// The live introspection plane (DESIGN.md §6h): the structured event
// log (bounded ring, concurrent writers, JSON-lines export), the
// MetricsSnapshotter's interval deltas, metric-name validation and
// Prometheus exposition hygiene, TraceRecorder drop accounting under
// concurrent writers, the admin wire frames (stats/health/trace-dump
// codecs), and the end-to-end path: a QssClient over a LoopbackPipe
// fetching stats, per-group health, and a trace dump from a live
// QssServer — with the qss.notify.* e2e attribution histograms
// populated by the run.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/clock.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "qss/fault.h"
#include "qss/qss.h"
#include "qss/server/protocol.h"
#include "qss/server/server.h"
#include "qss/server/transport.h"
#include "testing/generators.h"

namespace doem {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// ------------------------------------------------------- EventLog

TEST(EventLogTest, RecordsInOrderWithSeqAndSeverity) {
  obs::EventLog log(16);
  log.Record(obs::EventType::kPollFailed, obs::EventSeverity::kError,
             Timestamp(5), "group-a", "boom");
  log.Record(obs::EventType::kSubscribed, obs::EventSeverity::kInfo,
             Timestamp(6), "NewPlaces");
  log.Record(obs::EventType::kQuarantineOpened, obs::EventSeverity::kWarning,
             Timestamp(7), "group-a", "2 consecutive failures");

  std::vector<obs::Event> events = log.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[2].seq, 2u);
  EXPECT_EQ(events[0].type, obs::EventType::kPollFailed);
  EXPECT_EQ(events[0].severity, obs::EventSeverity::kError);
  EXPECT_EQ(events[0].sim, Timestamp(5));
  EXPECT_EQ(events[0].subject, "group-a");
  EXPECT_EQ(events[0].detail, "boom");
  EXPECT_EQ(events[1].detail, "");
  EXPECT_EQ(log.recorded(), 3u);
  EXPECT_EQ(log.overwritten(), 0u);
  EXPECT_EQ(log.capacity(), 16u);
}

TEST(EventLogTest, RingOverwritesOldestAndCountsThem) {
  obs::EventLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.Record(obs::EventType::kPollFailed, obs::EventSeverity::kError,
               Timestamp(i), "s" + std::to_string(i));
  }
  EXPECT_EQ(log.recorded(), 10u);
  EXPECT_EQ(log.overwritten(), 6u);
  std::vector<obs::Event> events = log.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The last four, oldest first.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, 6u + i);
    EXPECT_EQ(events[i].subject, "s" + std::to_string(6 + i));
  }
}

TEST(EventLogTest, JsonLinesExportFiltersBySeverityAndEscapes) {
  obs::EventLog log(8);
  log.Record(obs::EventType::kStoreError, obs::EventSeverity::kError,
             Timestamp(1), "path\\with\"quotes", "line1\nline2");
  log.Record(obs::EventType::kGroupCreated, obs::EventSeverity::kInfo,
             Timestamp(2), "key\x1fwith-unit-sep");
  log.Record(obs::EventType::kQuarantineOpened, obs::EventSeverity::kWarning,
             Timestamp(3), "g");

  std::string all = log.ExportJsonLines();
  EXPECT_EQ(std::count(all.begin(), all.end(), '\n'), 3);
  EXPECT_TRUE(Contains(all, "\"type\":\"store-error\""));
  EXPECT_TRUE(Contains(all, "\"severity\":\"error\""));
  EXPECT_TRUE(Contains(all, "path\\\\with\\\"quotes"));
  EXPECT_TRUE(Contains(all, "line1\\nline2"));
  EXPECT_TRUE(Contains(all, "\\u001f"));
  EXPECT_TRUE(Contains(all, "\"sim_ticks\":2"));

  // Floor kWarning drops the info event only.
  std::string warnings = log.ExportJsonLines(obs::EventSeverity::kWarning);
  EXPECT_EQ(std::count(warnings.begin(), warnings.end(), '\n'), 2);
  EXPECT_FALSE(Contains(warnings, "group-created"));
  EXPECT_TRUE(Contains(warnings, "store-error"));
  EXPECT_TRUE(Contains(warnings, "quarantine-opened"));
}

TEST(EventLogTest, EveryTypeHasAStableName) {
  std::set<std::string> names;
  for (obs::EventType t : {
           obs::EventType::kPollFailed, obs::EventType::kPollMissed,
           obs::EventType::kQuarantineOpened, obs::EventType::kQuarantineProbe,
           obs::EventType::kQuarantineClosed, obs::EventType::kStoreError,
           obs::EventType::kFilterError, obs::EventType::kFramePoisoned,
           obs::EventType::kConnectionOpened,
           obs::EventType::kConnectionClosed, obs::EventType::kSubscribed,
           obs::EventType::kSubscribeRejected, obs::EventType::kUnsubscribed,
           obs::EventType::kGroupCreated, obs::EventType::kGroupRetired}) {
    std::string name = obs::EventTypeToString(t);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "unknown");
    // Distinct values, distinct strings.
    EXPECT_TRUE(names.insert(name).second) << name;
  }
}

// Run in the TSan lane: concurrent writers never contend on a shared
// lock, yet the total order (seq) is consistent and nothing is lost
// short of the ring bound.
TEST(EventLogTest, ConcurrentWritersKeepTotalOrder) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  obs::EventLog log(256);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Record(obs::EventType::kPollFailed, obs::EventSeverity::kInfo,
                   Timestamp(i), "t" + std::to_string(t),
                   std::to_string(i));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(log.recorded(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(log.overwritten(),
            static_cast<uint64_t>(kThreads * kPerThread - 256));
  std::vector<obs::Event> events = log.Snapshot();
  EXPECT_EQ(events.size(), 256u);
  // Strictly increasing seq, all from the final window of the total
  // order (a lapped slot keeps the younger event).
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
  for (const obs::Event& e : events) {
    EXPECT_GE(e.seq, log.overwritten());
  }
}

TEST(EventLogTest, SnapshotWhileWritersRunIsSafe) {
  obs::EventLog log(64);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      log.Record(obs::EventType::kPollMissed, obs::EventSeverity::kWarning,
                 Timestamp(i++), "w");
    }
  });
  for (int i = 0; i < 50; ++i) {
    std::vector<obs::Event> events = log.Snapshot();
    EXPECT_LE(events.size(), 64u);
    for (size_t j = 1; j < events.size(); ++j) {
      EXPECT_LT(events[j - 1].seq, events[j].seq);
    }
  }
  stop.store(true);
  writer.join();
}

// ------------------------------------------------ MetricsSnapshotter

TEST(SnapshotterTest, CapturesIntervalDeltasAndGaugeLevels) {
  obs::ManualClock clock(100);
  obs::ScopedClockOverride install(&clock);
  obs::MetricsRegistry registry;
  obs::Counter* polls = registry.GetCounter("qss.polls_ok", "ok polls");
  obs::Gauge* groups = registry.GetGauge("qss.groups", "live groups");
  obs::Histogram* lat =
      registry.GetHistogram("qss.fetch_ns", obs::LatencyBucketsNs(), "fetch");

  polls->Increment(3);
  groups->Set(2);
  lat->Observe(1000);

  obs::MetricsSnapshotter snap(&registry);  // baseline includes the 3/2/1
  clock.Advance(50);
  polls->Increment(4);
  groups->Set(7);
  lat->Observe(2000);
  lat->Observe(3000);

  obs::MetricsSnapshotter::Interval interval = snap.Capture();
  EXPECT_EQ(interval.interval_ns, 50);
  EXPECT_EQ(interval.counter_deltas.at("qss.polls_ok"), 4u);
  EXPECT_EQ(interval.histogram_count_deltas.at("qss.fetch_ns"), 2u);
  EXPECT_EQ(interval.gauges.at("qss.groups"), 7);

  // The capture reset the baseline: a quiet second interval is all
  // zeros, and gauges stay levels.
  clock.Advance(25);
  obs::MetricsSnapshotter::Interval second = snap.Capture();
  EXPECT_EQ(second.interval_ns, 25);
  EXPECT_EQ(second.counter_deltas.at("qss.polls_ok"), 0u);
  EXPECT_EQ(second.histogram_count_deltas.at("qss.fetch_ns"), 0u);
  EXPECT_EQ(second.gauges.at("qss.groups"), 7);

  std::string json = interval.ToJson();
  EXPECT_TRUE(Contains(json, "\"interval_ns\":50"));
  EXPECT_TRUE(Contains(json, "\"counter_deltas\":{"));
  EXPECT_TRUE(Contains(json, "\"qss.polls_ok\":4"));
  EXPECT_TRUE(Contains(json, "\"histogram_count_deltas\":{"));
  EXPECT_TRUE(Contains(json, "\"gauges\":{\"qss.groups\":7}"));
}

TEST(SnapshotterTest, MetricsRegisteredMidIntervalDeltaFromZero) {
  obs::MetricsRegistry registry;
  obs::MetricsSnapshotter snap(&registry);
  registry.GetCounter("late.arrival", "registered after the baseline")
      ->Increment(5);
  obs::MetricsSnapshotter::Interval interval = snap.Capture();
  EXPECT_EQ(interval.counter_deltas.at("late.arrival"), 5u);
}

// ------------------------------------- name validation + exposition

TEST(MetricNameTest, ValidNameCharset) {
  EXPECT_TRUE(obs::MetricsRegistry::ValidName("qss.polls_ok"));
  EXPECT_TRUE(obs::MetricsRegistry::ValidName("a"));
  EXPECT_TRUE(obs::MetricsRegistry::ValidName("store.recovery_truncations"));
  EXPECT_TRUE(obs::MetricsRegistry::ValidName("x9.y_z"));

  EXPECT_FALSE(obs::MetricsRegistry::ValidName(""));
  EXPECT_FALSE(obs::MetricsRegistry::ValidName("Qss.polls"));   // upper
  EXPECT_FALSE(obs::MetricsRegistry::ValidName("9lives"));      // digit first
  EXPECT_FALSE(obs::MetricsRegistry::ValidName("_x"));          // _ first
  EXPECT_FALSE(obs::MetricsRegistry::ValidName("qss pols"));    // space
  EXPECT_FALSE(obs::MetricsRegistry::ValidName("qss-polls"));   // dash
  EXPECT_FALSE(obs::MetricsRegistry::ValidName("qss..polls"));  // empty seg
  EXPECT_FALSE(obs::MetricsRegistry::ValidName("qss.polls."));  // trailing .
  EXPECT_FALSE(obs::MetricsRegistry::ValidName(".qss"));        // leading .
}

TEST(MetricNameDeathTest, BadRegistrationAbortsLoudly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  obs::MetricsRegistry registry;
  EXPECT_DEATH(registry.GetCounter("Bad Name"), "invalid metric name");
  EXPECT_DEATH(registry.GetGauge("qss..groups"), "invalid metric name");
  EXPECT_DEATH(registry.GetHistogram("-x", obs::LatencyBucketsNs()),
               "invalid metric name");
}

TEST(PrometheusHygieneTest, EveryMetricGetsHelpAndTypeLines) {
  obs::MetricsRegistry registry;
  registry.GetCounter("demo.count", "counted things")->Increment(2);
  registry.GetGauge("demo.level", "current level")->Set(-3);
  registry
      .GetHistogram("demo.lat_ns", obs::LatencyBucketsNs(), "latency of demo")
      ->Observe(1);

  std::string prom = registry.ExportPrometheus();
  EXPECT_TRUE(Contains(prom, "# HELP demo_count counted things\n"));
  EXPECT_TRUE(Contains(prom, "# TYPE demo_count counter\n"));
  EXPECT_TRUE(Contains(prom, "# HELP demo_level current level\n"));
  EXPECT_TRUE(Contains(prom, "# TYPE demo_level gauge\n"));
  EXPECT_TRUE(Contains(prom, "# TYPE demo_lat_ns histogram\n"));
  EXPECT_TRUE(Contains(prom, "demo_count 2\n"));
  EXPECT_TRUE(Contains(prom, "demo_level -3\n"));

  // Metrics registered without help still get the # TYPE line.
  registry.GetCounter("demo.bare");
  prom = registry.ExportPrometheus();
  EXPECT_TRUE(Contains(prom, "# TYPE demo_bare counter\n"));
}

TEST(PrometheusHygieneTest, HelpTextEscapesBackslashAndNewline) {
  obs::MetricsRegistry registry;
  registry.GetCounter("demo.esc", "path\\to\nsomewhere");
  std::string prom = registry.ExportPrometheus();
  EXPECT_TRUE(Contains(prom, "# HELP demo_esc path\\\\to\\nsomewhere\n"));
}

TEST(MetricsDescribeTest, ListsKindAndHelpInNameOrder) {
  obs::MetricsRegistry registry;
  registry.GetGauge("b.gauge", "a level");
  registry.GetCounter("a.count", "a count");
  registry.GetHistogram("c.hist", obs::LatencyBucketsNs(), "a histogram");

  std::vector<obs::MetricsRegistry::MetricInfo> info = registry.Describe();
  ASSERT_EQ(info.size(), 3u);
  EXPECT_EQ(info[0].name, "a.count");
  EXPECT_EQ(info[0].kind, "counter");
  EXPECT_EQ(info[0].help, "a count");
  EXPECT_EQ(info[1].name, "b.gauge");
  EXPECT_EQ(info[1].kind, "gauge");
  EXPECT_EQ(info[2].name, "c.hist");
  EXPECT_EQ(info[2].kind, "histogram");
}

// -------------------------------------------- TraceRecorder bounds

#ifndef DOEM_TRACING_DISABLED

// Run in the TSan lane: drop accounting is exact under concurrent
// writers — per-thread buffers mean each thread drops its own overflow.
TEST(TraceDropTest, ConcurrentWritersDropExactOverflow) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 300;
  constexpr size_t kCap = 100;
  obs::TraceRecorder recorder(kCap);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::TraceEvent e;
        e.name = "span";
        e.category = "test";
        e.start_ns = t * kPerThread + i;
        recorder.Record(std::move(e));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(recorder.Events().size(), kThreads * kCap);
  EXPECT_EQ(recorder.dropped(),
            static_cast<uint64_t>(kThreads * (kPerThread - kCap)));
}

TEST(TraceDropTest, ClearDrainsEventsAndResetsDropCounter) {
  obs::TraceRecorder recorder(2);
  for (int i = 0; i < 5; ++i) {
    obs::TraceEvent e;
    e.name = "s" + std::to_string(i);
    e.category = "test";
    e.start_ns = i;
    recorder.Record(std::move(e));
  }
  EXPECT_EQ(recorder.Events().size(), 2u);
  EXPECT_EQ(recorder.dropped(), 3u);

  recorder.Clear();
  EXPECT_EQ(recorder.Events().size(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_TRUE(Contains(recorder.ExportChromeTrace(), "\"traceEvents\""));

  // The thread's buffer stayed registered; recording resumes.
  obs::TraceEvent e;
  e.name = "after-clear";
  e.category = "test";
  e.start_ns = 99;
  recorder.Record(std::move(e));
  ASSERT_EQ(recorder.Events().size(), 1u);
  EXPECT_EQ(recorder.Events()[0].name, "after-clear");
}

#endif  // DOEM_TRACING_DISABLED

// ------------------------------------------------ admin wire frames

namespace qs = qss::server;

TEST(AdminFrameTest, StatsMessagesRoundTrip) {
  qs::StatsRequestMsg req;
  req.format = qs::StatsFormat::kJson;
  qs::FrameBuffer buf;
  ASSERT_TRUE(buf.Feed(qs::EncodeStatsRequest(req)).ok());
  qs::WireFrame frame;
  ASSERT_TRUE(buf.Next(&frame));
  EXPECT_EQ(frame.type, qs::MsgType::kStatsRequest);
  auto req2 = qs::DecodeStatsRequest(frame.payload);
  ASSERT_TRUE(req2.ok());
  EXPECT_EQ(req2->format, qs::StatsFormat::kJson);

  qs::StatsReplyMsg reply;
  reply.format = qs::StatsFormat::kPrometheus;
  reply.body = "# HELP x y\nx 1\n";
  reply.interval_ns = 123456789;
  reply.rates_json = "{\"interval_ns\":123456789}";
  ASSERT_TRUE(buf.Feed(qs::EncodeStatsReply(reply)).ok());
  ASSERT_TRUE(buf.Next(&frame));
  EXPECT_EQ(frame.type, qs::MsgType::kStatsReply);
  auto reply2 = qs::DecodeStatsReply(frame.payload);
  ASSERT_TRUE(reply2.ok()) << reply2.status().ToString();
  EXPECT_EQ(reply2->format, qs::StatsFormat::kPrometheus);
  EXPECT_EQ(reply2->body, reply.body);
  EXPECT_EQ(reply2->interval_ns, reply.interval_ns);
  EXPECT_EQ(reply2->rates_json, reply.rates_json);

  // A bogus format byte is a parse error, not an enum out of range.
  EXPECT_FALSE(qs::DecodeStatsRequest(std::string(1, '\x07')).ok());
}

TEST(AdminFrameTest, HealthReplyRoundTripsEveryField) {
  qs::HealthReplyMsg reply;
  reply.now = Timestamp(9999);
  qs::GroupHealthMsg g;
  g.key = "select guide.restaurant\x1f" "1";
  g.entries = "NewPlaces,PriceMoves";
  g.subscribers = 2;
  g.polls_committed = 11;
  g.next_poll = Timestamp(10000);
  g.circuit = qss::CircuitState::kHalfOpen;
  g.consecutive_failures = 3;
  g.last_error = "Unavailable: outage";
  g.polls_attempted = 13;
  g.polls_succeeded = 11;
  g.polls_failed = 2;
  g.retries = 4;
  g.backoff_ticks = 6;
  g.quarantined_until = Timestamp(10002);
  g.missed.push_back({Timestamp(9990), "quarantined"});
  g.missed.push_back({Timestamp(9991), "still quarantined"});
  g.missed_dropped = 7;
  g.last_poll.fetch_ns = 1;
  g.last_poll.diff_ns = 2;
  g.last_poll.apply_ns = 3;
  g.last_poll.filter_ns = 4;
  g.last_poll.fanout_ns = 5;
  g.last_poll.wire_ns = 6;
  g.last_poll.e2e_ns = 21;
  reply.groups.push_back(g);

  qs::FrameBuffer buf;
  ASSERT_TRUE(buf.Feed(qs::EncodeHealthRequest(qs::HealthRequestMsg{})).ok());
  qs::WireFrame frame;
  ASSERT_TRUE(buf.Next(&frame));
  EXPECT_EQ(frame.type, qs::MsgType::kHealthRequest);
  EXPECT_TRUE(qs::DecodeHealthRequest(frame.payload).ok());

  ASSERT_TRUE(buf.Feed(qs::EncodeHealthReply(reply)).ok());
  ASSERT_TRUE(buf.Next(&frame));
  EXPECT_EQ(frame.type, qs::MsgType::kHealthReply);
  auto reply2 = qs::DecodeHealthReply(frame.payload);
  ASSERT_TRUE(reply2.ok()) << reply2.status().ToString();
  EXPECT_EQ(reply2->now, reply.now);
  ASSERT_EQ(reply2->groups.size(), 1u);
  const qs::GroupHealthMsg& h = reply2->groups[0];
  EXPECT_EQ(h.key, g.key);
  EXPECT_EQ(h.entries, g.entries);
  EXPECT_EQ(h.subscribers, g.subscribers);
  EXPECT_EQ(h.polls_committed, g.polls_committed);
  EXPECT_EQ(h.next_poll, g.next_poll);
  EXPECT_EQ(h.circuit, g.circuit);
  EXPECT_EQ(h.consecutive_failures, g.consecutive_failures);
  EXPECT_EQ(h.last_error, g.last_error);
  EXPECT_EQ(h.polls_attempted, g.polls_attempted);
  EXPECT_EQ(h.polls_succeeded, g.polls_succeeded);
  EXPECT_EQ(h.polls_failed, g.polls_failed);
  EXPECT_EQ(h.retries, g.retries);
  EXPECT_EQ(h.backoff_ticks, g.backoff_ticks);
  EXPECT_EQ(h.quarantined_until, g.quarantined_until);
  ASSERT_EQ(h.missed.size(), 2u);
  EXPECT_EQ(h.missed[0].time, Timestamp(9990));
  EXPECT_EQ(h.missed[0].reason, "quarantined");
  EXPECT_EQ(h.missed[1].reason, "still quarantined");
  EXPECT_EQ(h.missed_dropped, g.missed_dropped);
  EXPECT_EQ(h.last_poll.fetch_ns, 1);
  EXPECT_EQ(h.last_poll.diff_ns, 2);
  EXPECT_EQ(h.last_poll.apply_ns, 3);
  EXPECT_EQ(h.last_poll.filter_ns, 4);
  EXPECT_EQ(h.last_poll.fanout_ns, 5);
  EXPECT_EQ(h.last_poll.wire_ns, 6);
  EXPECT_EQ(h.last_poll.e2e_ns, 21);

  // Truncated payload and trailing bytes both fail cleanly.
  std::string payload = frame.payload;
  EXPECT_FALSE(
      qs::DecodeHealthReply(std::string_view(payload).substr(0, 20)).ok());
  EXPECT_FALSE(qs::DecodeHealthReply(payload + "x").ok());
}

TEST(AdminFrameTest, TraceDumpMessagesRoundTrip) {
  qs::FrameBuffer buf;
  ASSERT_TRUE(
      buf.Feed(qs::EncodeTraceDumpRequest(qs::TraceDumpRequestMsg{})).ok());
  qs::WireFrame frame;
  ASSERT_TRUE(buf.Next(&frame));
  EXPECT_EQ(frame.type, qs::MsgType::kTraceDumpRequest);
  EXPECT_TRUE(qs::DecodeTraceDumpRequest(frame.payload).ok());
  // Requests carry no payload at all.
  EXPECT_TRUE(frame.payload.empty());

  qs::TraceDumpReplyMsg reply;
  reply.events = 42;
  reply.dropped = 7;
  reply.chrome_json = "{\"traceEvents\":[]}";
  ASSERT_TRUE(buf.Feed(qs::EncodeTraceDumpReply(reply)).ok());
  ASSERT_TRUE(buf.Next(&frame));
  EXPECT_EQ(frame.type, qs::MsgType::kTraceDumpReply);
  auto reply2 = qs::DecodeTraceDumpReply(frame.payload);
  ASSERT_TRUE(reply2.ok());
  EXPECT_EQ(reply2->events, 42u);
  EXPECT_EQ(reply2->dropped, 7u);
  EXPECT_EQ(reply2->chrome_json, reply.chrome_json);
}

// ------------------------------------------- end-to-end over a pipe

// One live service + server + piped client: the workload runs, then the
// client pulls stats, health, and a trace dump over the wire.
struct IntrospectionHarness {
  OemDatabase base;
  qss::ScriptedSource source;
  obs::MetricsRegistry metrics;
  obs::TraceRecorder trace;
  obs::EventLog events;
  qss::QuerySubscriptionService service;
  qs::QssServer server;
  qs::LoopbackPipe pipe;
  qs::QssServer::ConnectionId conn = 0;
  qs::QssClient client;

  IntrospectionHarness()
      : base(testing::SyntheticGuide(12)),
        source(base, testing::SyntheticGuideHistory(base, 8, 3)),
        service(&source, Timestamp::FromDate(1997, 1, 1), Options()),
        server(&service.registry()),
        client([this](std::string_view bytes) { pipe.ClientSend(bytes); }) {
    conn = server.Attach(
        [this](std::string_view bytes) { pipe.ServerSend(bytes); });
    pipe.set_server_sink([this](std::string_view bytes) {
      server.OnBytes(conn, bytes);
    });
    pipe.set_client_sink(
        [this](std::string_view bytes) { client.OnBytes(bytes); });
  }

  qss::QssOptions Options() {
    qss::QssOptions opts;
    opts.observability.metrics = &metrics;
    opts.observability.trace = &trace;
    opts.observability.events = &events;
    return opts;
  }

  // Sends one request, pumps, and returns the single reply event.
  qs::QssClient::Event RoundTrip() {
    pipe.PumpAll();
    std::vector<qs::QssClient::Event> got = client.TakeEvents();
    EXPECT_EQ(got.size(), 1u);
    return got.empty() ? qs::QssClient::Event{} : std::move(got.back());
  }
};

TEST(IntrospectionE2eTest, StatsHealthAndTraceOverTheWire) {
  IntrospectionHarness h;

  qs::SubscribeMsg sub;
  sub.name = "Names";
  sub.interval_ticks = 1;
  sub.polling_query = "select guide.restaurant.name";
  sub.filter_query = "select Names.name<cre at T> where T > t[-1]";
  h.client.Subscribe(sub);
  qs::QssClient::Event ok = h.RoundTrip();
  ASSERT_EQ(ok.type, qs::MsgType::kSubscribed);

  Timestamp start = Timestamp::FromDate(1997, 1, 1);
  size_t notifications = 0;
  bool last_day_notified = false;
  for (int day = 0; day < 8; ++day) {
    ASSERT_TRUE(h.service.AdvanceTo(Timestamp(start.ticks + day)).ok());
    h.pipe.PumpAll();
    last_day_notified = false;
    for (const auto& e : h.client.TakeEvents()) {
      if (e.type == qs::MsgType::kNotification) {
        ++notifications;
        last_day_notified = true;
      }
    }
  }
  ASSERT_GT(notifications, 0u);
  uint64_t polls = h.metrics.CounterValue("qss.polls_ok");
  ASSERT_GT(polls, 0u);

  // The e2e attribution histograms populated: one observation per
  // delivered notification, segments included.
  EXPECT_EQ(h.metrics.HistogramCount("qss.notify.e2e_ns"), notifications);
  EXPECT_EQ(h.metrics.HistogramCount("qss.notify.fetch_ns"), notifications);
  EXPECT_EQ(h.metrics.HistogramCount("qss.notify.diff_ns"), notifications);
  EXPECT_EQ(h.metrics.HistogramCount("qss.notify.apply_ns"), notifications);
  EXPECT_EQ(h.metrics.HistogramCount("qss.notify.filter_ns"), notifications);
  EXPECT_EQ(h.metrics.HistogramCount("qss.notify.fanout_ns"), notifications);
  EXPECT_EQ(h.metrics.HistogramCount("qss.server.wire_ns"), notifications);

  // Stats over the wire, both formats.
  h.client.RequestStats(qs::StatsFormat::kPrometheus);
  qs::QssClient::Event stats = h.RoundTrip();
  ASSERT_EQ(stats.type, qs::MsgType::kStatsReply);
  EXPECT_EQ(stats.stats.format, qs::StatsFormat::kPrometheus);
  EXPECT_TRUE(Contains(stats.stats.body, "# HELP qss_polls_ok"));
  EXPECT_TRUE(Contains(stats.stats.body, "# TYPE qss_notify_e2e_ns histogram"));
  EXPECT_TRUE(Contains(stats.stats.body, "qss_server_notifications"));
  EXPECT_GT(stats.stats.interval_ns, 0);
  EXPECT_TRUE(Contains(stats.stats.rates_json, "\"counter_deltas\""));
  // The first interval spans the whole workload: every committed poll.
  EXPECT_TRUE(Contains(stats.stats.rates_json,
                       "\"qss.polls_ok\":" + std::to_string(polls)));

  h.client.RequestStats(qs::StatsFormat::kJson);
  qs::QssClient::Event stats_json = h.RoundTrip();
  ASSERT_EQ(stats_json.type, qs::MsgType::kStatsReply);
  EXPECT_EQ(stats_json.stats.format, qs::StatsFormat::kJson);
  EXPECT_TRUE(Contains(stats_json.stats.body, "\"counters\""));
  // The second interval saw no polls.
  EXPECT_TRUE(
      Contains(stats_json.stats.rates_json, "\"qss.polls_ok\":0"));

  // Health over the wire.
  h.client.RequestHealth();
  qs::QssClient::Event health = h.RoundTrip();
  ASSERT_EQ(health.type, qs::MsgType::kHealthReply);
  EXPECT_EQ(health.health.now, Timestamp(start.ticks + 7));
  ASSERT_EQ(health.health.groups.size(), 1u);
  const qs::GroupHealthMsg& g = health.health.groups[0];
  EXPECT_EQ(g.subscribers, 1u);
  EXPECT_EQ(g.circuit, qss::CircuitState::kClosed);
  EXPECT_EQ(g.polls_attempted, polls);
  EXPECT_EQ(g.polls_succeeded, polls);
  EXPECT_TRUE(Contains(g.entries, "Names"));
  // Phase attribution of the most recent poll: e2e and wire are only
  // stamped when that poll actually delivered a notification.
  if (last_day_notified) {
    EXPECT_GT(g.last_poll.e2e_ns, 0);
    EXPECT_GT(g.last_poll.wire_ns, 0);
    EXPECT_GE(g.last_poll.e2e_ns, g.last_poll.fetch_ns +
                                      g.last_poll.diff_ns +
                                      g.last_poll.apply_ns);
  }

#ifndef DOEM_TRACING_DISABLED
  // The trace dump drains the recorder.
  h.client.RequestTraceDump();
  qs::QssClient::Event dump = h.RoundTrip();
  ASSERT_EQ(dump.type, qs::MsgType::kTraceDumpReply);
  EXPECT_GT(dump.trace_dump.events, 0u);
  EXPECT_TRUE(Contains(dump.trace_dump.chrome_json, "\"qss.advance\""));
  h.client.RequestTraceDump();
  qs::QssClient::Event empty = h.RoundTrip();
  ASSERT_EQ(empty.type, qs::MsgType::kTraceDumpReply);
  EXPECT_EQ(empty.trace_dump.events, 0u);
#endif

#ifndef DOEM_EVENTLOG_DISABLED
  // The event log journaled the wire session itself.
  std::string log = h.events.ExportJsonLines();
  EXPECT_TRUE(Contains(log, "\"connection-opened\""));
  EXPECT_TRUE(Contains(log, "\"subscribed\""));
  EXPECT_TRUE(Contains(log, "\"group-created\""));
#endif
}

TEST(IntrospectionE2eTest, AdminRequestsWithoutSinksAreUnavailable) {
  OemDatabase base = testing::SyntheticGuide(6);
  qss::ScriptedSource source(base, testing::SyntheticGuideHistory(base, 3, 2));
  qss::QuerySubscriptionService service(
      &source, Timestamp::FromDate(1997, 1, 1), qss::QssOptions{});
  qs::QssServer server(&service.registry());
  qs::LoopbackPipe pipe;
  qs::QssClient client(
      [&pipe](std::string_view bytes) { pipe.ClientSend(bytes); });
  qs::QssServer::ConnectionId conn = server.Attach(
      [&pipe](std::string_view bytes) { pipe.ServerSend(bytes); });
  pipe.set_server_sink([&server, conn](std::string_view bytes) {
    server.OnBytes(conn, bytes);
  });
  pipe.set_client_sink(
      [&client](std::string_view bytes) { client.OnBytes(bytes); });

  client.RequestStats();
  client.RequestTraceDump();
  pipe.PumpAll();
  std::vector<qs::QssClient::Event> got = client.TakeEvents();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].type, qs::MsgType::kError);
  EXPECT_EQ(got[0].error.kind, "unavailable");
  EXPECT_TRUE(Contains(got[0].error.message, "metrics"));
  EXPECT_EQ(got[1].type, qs::MsgType::kError);
  EXPECT_EQ(got[1].error.kind, "unavailable");
  EXPECT_TRUE(Contains(got[1].error.message, "trace"));
  // The connection survived both refusals; health works without sinks.
  EXPECT_TRUE(server.Connected(conn));
  client.RequestHealth();
  pipe.PumpAll();
  got = client.TakeEvents();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].type, qs::MsgType::kHealthReply);
  EXPECT_TRUE(got[0].health.groups.empty());
}

}  // namespace
}  // namespace doem
