// The parallel poll engine's contract (DESIGN.md §6b): whatever executor
// runs the fetch→diff stage, QSS commits results in group-key order, so
// serial and parallel runs must produce byte-identical DOEM histories,
// polling times, health (including MissedPoll logs under injected
// faults), reports, and notification order.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <numeric>
#include <string>
#include <vector>

#include "encoding/doem_text.h"
#include "oem/graph_compare.h"
#include "qss/executor.h"
#include "qss/fault.h"
#include "qss/qss.h"
#include "testing/generators.h"

namespace doem {
namespace qss {
namespace {

// ------------------------------------------------------------- Executor

TEST(ExecutorTest, SerialExecutorRunsInIndexOrder) {
  SerialExecutor exec;
  std::vector<size_t> order;
  exec.ParallelFor(5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(exec.concurrency(), 1);
}

TEST(ExecutorTest, ThreadPoolRunsEveryTaskExactlyOnce) {
  ThreadPoolExecutor pool(4);
  EXPECT_EQ(pool.concurrency(), 4);
  constexpr size_t kTasks = 100;  // more tasks than threads
  std::vector<int> hits(kTasks, 0);
  pool.ParallelFor(kTasks, [&](size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(kTasks));
  EXPECT_EQ(*std::min_element(hits.begin(), hits.end()), 1);
  EXPECT_EQ(*std::max_element(hits.begin(), hits.end()), 1);
}

TEST(ExecutorTest, ThreadPoolIsReusableAcrossBatches) {
  ThreadPoolExecutor pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> sum{0};
    pool.ParallelFor(7, [&](size_t i) { sum += static_cast<int>(i); });
    EXPECT_EQ(sum.load(), 21);
  }
  pool.ParallelFor(0, [](size_t) { FAIL() << "no task for n == 0"; });
}

TEST(ExecutorTest, ThreadPoolClampsToAtLeastOneThread) {
  ThreadPoolExecutor pool(0);
  EXPECT_EQ(pool.concurrency(), 1);
  std::atomic<int> ran{0};
  pool.ParallelFor(3, [&](size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 3);
}

TEST(ExecutorTest, ThreadPoolTasksGenuinelyOverlap) {
  // Two tasks rendezvous: each signals its start and waits (bounded) for
  // the other. Only an executor running them concurrently completes
  // without hitting the timeout.
  ThreadPoolExecutor pool(2);
  std::mutex mu;
  std::condition_variable cv;
  int started = 0;
  int met = 0;
  pool.ParallelFor(2, [&](size_t) {
    std::unique_lock<std::mutex> lock(mu);
    ++started;
    cv.notify_all();
    if (cv.wait_for(lock, std::chrono::seconds(30),
                    [&] { return started == 2; })) {
      ++met;
    }
  });
  EXPECT_EQ(met, 2) << "tasks never ran concurrently";
}

// ------------------------------------- Serial-vs-parallel determinism

// Everything observable about one service run, with the wall-clock
// timing counters (the one intentionally nondeterministic part of
// PollReport) left out.
struct RunResult {
  std::map<std::string, std::string> history_text;
  std::map<std::string, std::vector<Timestamp>> polls;
  std::map<std::string, PollHealth> health;
  PollReport report;
  std::vector<std::string> notifications;
  std::vector<std::string> errors;
};

void ExpectSameRun(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.history_text, b.history_text)
      << "DOEM histories must be byte-identical";
  EXPECT_EQ(a.polls, b.polls);
  EXPECT_EQ(a.notifications, b.notifications);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.report.polls_attempted, b.report.polls_attempted);
  EXPECT_EQ(a.report.polls_ok, b.report.polls_ok);
  EXPECT_EQ(a.report.polls_failed, b.report.polls_failed);
  EXPECT_EQ(a.report.polls_missed, b.report.polls_missed);
  EXPECT_EQ(a.report.retries, b.report.retries);
  EXPECT_EQ(a.report.notifications, b.report.notifications);
  ASSERT_EQ(a.health.size(), b.health.size());
  for (const auto& [name, ha] : a.health) {
    ASSERT_TRUE(b.health.contains(name)) << name;
    const PollHealth& hb = b.health.at(name);
    EXPECT_EQ(ha.state, hb.state) << name;
    EXPECT_EQ(ha.consecutive_failures, hb.consecutive_failures) << name;
    EXPECT_EQ(ha.last_error.ToString(), hb.last_error.ToString()) << name;
    EXPECT_EQ(ha.polls_attempted, hb.polls_attempted) << name;
    EXPECT_EQ(ha.polls_succeeded, hb.polls_succeeded) << name;
    EXPECT_EQ(ha.polls_failed, hb.polls_failed) << name;
    EXPECT_EQ(ha.retries, hb.retries) << name;
    EXPECT_EQ(ha.backoff_ticks, hb.backoff_ticks) << name;
    ASSERT_EQ(ha.missed.size(), hb.missed.size())
        << name << ": MissedPoll logs must be identical";
    for (size_t i = 0; i < ha.missed.size(); ++i) {
      EXPECT_EQ(ha.missed[i].time, hb.missed[i].time) << name << " #" << i;
      EXPECT_EQ(ha.missed[i].reason, hb.missed[i].reason) << name << " #" << i;
    }
  }
  // The histories also compare equal as graphs (not just as text).
  for (const auto& [name, text] : a.history_text) {
    auto da = ParseDoemText(text);
    auto db = ParseDoemText(b.history_text.at(name));
    ASSERT_TRUE(da.ok()) << da.status().ToString();
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_TRUE(da->Equals(*db)) << name;
    EXPECT_TRUE(Isomorphic(da->graph(), db->graph())) << name;
  }
}

struct Scenario {
  bool preserve_ids = true;
  bool with_faults = true;
};

// Four poll groups with distinct polling queries (so fault specs can be
// pinned to one group each — see FaultInjectingSource) and co-prime
// frequencies, producing waves of 1..4 groups; one group has two
// members. Faults: a quarantine-length outage on the price group, two
// truncated snapshots on the name group, and deadline-busting slow polls
// on the address group.
RunResult RunScenario(Executor* executor, const Scenario& scenario) {
  OemDatabase base = testing::SyntheticGuide(20);
  OemHistory script = testing::SyntheticGuideHistory(base, 14, 4);
  Timestamp start = Timestamp::FromDate(1997, 1, 1);

  ScriptedSource inner(base, script, scenario.preserve_ids);
  FaultInjectingSource source(&inner);
  if (scenario.with_faults) {
    // Five consecutive failing calls = two failed polls (two attempts
    // each) plus a failed half-open probe: with a 3-tick cool-down the
    // price group (2-tick interval) gets quarantined twice and records
    // scheduled polls as missed.
    source.FailPolls(/*skip=*/2, /*count=*/5, Status::Unavailable("outage"),
                     /*query_contains=*/".price");
    source.GarbagePolls(/*skip=*/1, /*count=*/2, /*query_contains=*/".name");
    source.SlowPolls(/*skip=*/3, /*count=*/2, /*duration_ticks=*/9,
                     /*query_contains=*/".address");
  }

  QssOptions opts;
  opts.executor = executor;
  opts.fault_tolerance.retry.max_attempts = 2;
  opts.fault_tolerance.retry.backoff_base_ticks = 1;
  opts.fault_tolerance.retry.poll_deadline_ticks = 5;
  opts.fault_tolerance.quarantine_after = 2;
  opts.fault_tolerance.quarantine_cooldown_ticks = 3;
  QuerySubscriptionService qss(&source, start, opts);

  RunResult out;
  auto subscribe = [&](const std::string& name, const std::string& leaf,
                       int64_t interval) {
    Subscription sub;
    sub.name = name;
    sub.frequency =
        *FrequencySpec::Parse("every " + std::to_string(interval) + " ticks");
    sub.polling_query = leaf.empty() ? "select guide.restaurant"
                                     : "select guide.restaurant." + leaf;
    std::string label = leaf.empty() ? "restaurant" : leaf;
    sub.filter_query =
        "select " + name + "." + label + "<cre at T> where T > t[-1]";
    Status st = qss.Subscribe(sub, [&out, name](const Notification& n) {
      out.notifications.push_back(name + "@" +
                                  std::to_string(n.poll_time.ticks) + "#" +
                                  std::to_string(n.poll_index) + ":" +
                                  std::to_string(n.result.rows.size()));
    });
    ASSERT_TRUE(st.ok()) << st.ToString();
  };
  subscribe("Names", "name", 1);
  subscribe("NamesToo", "name", 1);  // second member of the Names group
  subscribe("Prices", "price", 2);
  subscribe("Addresses", "address", 3);
  subscribe("Everything", "", 1);
  EXPECT_EQ(qss.GroupCount(), 4u);
  if (::testing::Test::HasFatalFailure()) return out;

  PollReport report;
  for (int64_t jump : {1, 3, 1, 4, 2, 2}) {
    Timestamp t(qss.now().ticks + jump);
    Status st = qss.AdvanceTo(t, &report);
    EXPECT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(qss.now(), t);
  }

  for (const std::string& name :
       {"Names", "NamesToo", "Prices", "Addresses", "Everything"}) {
    const DoemDatabase* d = qss.History(name);
    if (d == nullptr) {
      ADD_FAILURE() << "no history for " << name;
      continue;
    }
    out.history_text[name] = WriteDoemText(*d);
    out.polls[name] = qss.PollingTimes(name);
    out.health[name] = qss.Health(name);
  }
  out.report = report;
  for (const PollError& e : report.errors) {
    out.errors.push_back(std::string(PollErrorKindToString(e.kind)) + ":" +
                         e.subject + "@" + std::to_string(e.time.ticks) + ":" +
                         e.status.ToString());
  }
  return out;
}

TEST(QssConcurrencyTest, ParallelRunIsByteIdenticalToSerialUnderFaults) {
  Scenario scenario;  // keyed diffs, fault injection on
  RunResult inline_run = RunScenario(nullptr, scenario);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());

  SerialExecutor serial;
  RunResult serial_run = RunScenario(&serial, scenario);
  ExpectSameRun(inline_run, serial_run);

  ThreadPoolExecutor pool(8);
  RunResult pool_run = RunScenario(&pool, scenario);
  ExpectSameRun(inline_run, pool_run);

  // Same pool again: executor reuse does not perturb anything either.
  RunResult pool_again = RunScenario(&pool, scenario);
  ExpectSameRun(inline_run, pool_again);

  // The scenario actually exercised the fault machinery.
  EXPECT_GT(inline_run.report.polls_failed, 0u);
  EXPECT_GT(inline_run.report.polls_missed, 0u);
  EXPECT_GT(inline_run.report.retries, 0u);
  EXPECT_FALSE(inline_run.errors.empty());
}

TEST(QssConcurrencyTest, StructuralSourceStaysDeterministicInParallel) {
  // preserve_ids = false: every poll re-packages with shifted ids, which
  // are per polling query precisely so thread interleavings cannot leak
  // into the histories (see ScriptedSource).
  Scenario scenario;
  scenario.preserve_ids = false;
  scenario.with_faults = false;
  RunResult serial_run = RunScenario(nullptr, scenario);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  ThreadPoolExecutor pool(8);
  RunResult pool_run = RunScenario(&pool, scenario);
  ExpectSameRun(serial_run, pool_run);
  EXPECT_EQ(serial_run.report.polls_failed, 0u);
  EXPECT_GT(serial_run.report.polls_ok, 0u);
}

TEST(QssConcurrencyTest, TimingCountersAreObservable) {
  OemDatabase base = testing::SyntheticGuide(20);
  OemHistory script = testing::SyntheticGuideHistory(base, 6, 4);
  Timestamp start = Timestamp::FromDate(1997, 1, 1);
  ScriptedSource source(base, script);
  ThreadPoolExecutor pool(4);
  QssOptions opts;
  opts.executor = &pool;
  QuerySubscriptionService qss(&source, start, opts);
  for (const std::string& leaf : {"name", "price"}) {
    Subscription sub;
    sub.name = leaf;
    sub.frequency = *FrequencySpec::Parse("every day");
    sub.polling_query = "select guide.restaurant." + leaf;
    sub.filter_query =
        "select " + leaf + "." + leaf + "<cre at T> where T > t[-1]";
    ASSERT_TRUE(qss.Subscribe(sub, nullptr).ok());
  }
  PollReport report;
  ASSERT_TRUE(qss.AdvanceTo(Timestamp(start.ticks + 5), &report).ok());
  EXPECT_EQ(report.polls_ok, 12u);
  EXPECT_GT(report.fetch_ns, 0) << "fetch phase must be accounted";
  EXPECT_GT(report.diff_ns, 0) << "diff phase must be accounted";
  EXPECT_GT(report.apply_ns, 0) << "apply phase must be accounted";
}

TEST(QssConcurrencyTest, PollNowAndSourceTriggerMatchSerialUnderPool) {
  auto run = [&](Executor* executor) {
    OemDatabase base = testing::SyntheticGuide(10);
    OemHistory script = testing::SyntheticGuideHistory(base, 8, 3);
    Timestamp start = Timestamp::FromDate(1997, 1, 1);
    ScriptedSource source(base, script);
    QssOptions opts;
    opts.executor = executor;
    QuerySubscriptionService qss(&source, start, opts);
    std::vector<std::string> log;
    for (const std::string& leaf : {"name", "price", "address"}) {
      Subscription sub;
      sub.name = leaf;
      sub.frequency = *FrequencySpec::Parse("every 2 ticks");
      sub.polling_query = "select guide.restaurant." + leaf;
      sub.filter_query =
          "select " + leaf + "." + leaf + "<cre at T> where T > t[-1]";
      EXPECT_TRUE(qss.Subscribe(sub, [&log, leaf](const Notification& n) {
                        log.push_back(leaf + "@" +
                                      std::to_string(n.poll_time.ticks));
                      }).ok());
    }
    PollReport report;
    EXPECT_TRUE(qss.AdvanceTo(Timestamp(start.ticks + 2), &report).ok());
    // Tick 3: nothing scheduled; the source announces a change instead.
    EXPECT_TRUE(qss.AdvanceTo(Timestamp(start.ticks + 3), &report).ok());
    EXPECT_TRUE(qss.NotifySourceChanged(&report).ok());
    EXPECT_TRUE(qss.AdvanceTo(Timestamp(start.ticks + 5), &report).ok());
    EXPECT_TRUE(qss.PollNow("price", &report).ok());
    std::map<std::string, std::string> texts;
    for (const std::string& leaf : {"name", "price", "address"}) {
      texts[leaf] = WriteDoemText(*qss.History(leaf));
      log.push_back(leaf + ":polls=" +
                    std::to_string(qss.PollingTimes(leaf).size()));
    }
    return std::pair(texts, log);
  };
  auto serial = run(nullptr);
  ThreadPoolExecutor pool(8);
  auto parallel = run(&pool);
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);
}

}  // namespace
}  // namespace qss
}  // namespace doem
