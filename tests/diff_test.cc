#include <gtest/gtest.h>

#include "diff/diff.h"
#include "oem/graph_compare.h"
#include "oem/history.h"
#include "oem/subgraph.h"
#include "testing/guide.h"

namespace doem {
namespace {

using testing::BuildGuide;
using testing::Guide;
using testing::GuideHistory;

// Applies a computed diff and checks the contract for each mode.
void CheckDiff(const OemDatabase& from, const OemDatabase& to,
               DiffMode mode) {
  auto ops = DiffSnapshots(from, to, mode);
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  OemDatabase patched = from;
  Status s = ApplyChangeSet(&patched, *ops);
  ASSERT_TRUE(s.ok()) << s.ToString() << "\n" << ChangeSetToString(*ops);
  if (mode == DiffMode::kKeyed) {
    EXPECT_TRUE(patched.Equals(to)) << ChangeSetToString(*ops);
  } else {
    EXPECT_TRUE(Isomorphic(patched, to)) << ChangeSetToString(*ops);
  }
}

class DiffBothModes : public ::testing::TestWithParam<DiffMode> {};

INSTANTIATE_TEST_SUITE_P(Modes, DiffBothModes,
                         ::testing::Values(DiffMode::kKeyed,
                                           DiffMode::kStructural),
                         [](const auto& info) {
                           return info.param == DiffMode::kKeyed
                                      ? "Keyed"
                                      : "Structural";
                         });

TEST_P(DiffBothModes, IdenticalSnapshotsYieldEmptyDiff) {
  Guide a = BuildGuide();
  Guide b = BuildGuide();
  auto ops = DiffSnapshots(a.db, b.db, GetParam());
  ASSERT_TRUE(ops.ok());
  EXPECT_TRUE(ops->empty());
}

TEST_P(DiffBothModes, GuideHistoryEndpoints) {
  // Figure 2 -> Figure 3: the diff must reproduce the change, whatever
  // the operation mix.
  Guide from = BuildGuide();
  OemDatabase to = BuildGuide().db;
  ASSERT_TRUE(GuideHistory().ApplyTo(&to).ok());
  CheckDiff(from.db, to, GetParam());
}

TEST_P(DiffBothModes, ValueUpdate) {
  Guide a = BuildGuide();
  OemDatabase b = BuildGuide().db;
  ASSERT_TRUE(b.UpdNode(1, Value::Int(42)).ok());
  CheckDiff(a.db, b, GetParam());
}

TEST_P(DiffBothModes, SubtreeDeletion) {
  Guide a = BuildGuide();
  OemDatabase b = BuildGuide().db;
  ASSERT_TRUE(b.RemArc(4, "restaurant", 6).ok());
  b.CollectGarbage();
  CheckDiff(a.db, b, GetParam());
}

TEST_P(DiffBothModes, SubtreeAddition) {
  Guide a = BuildGuide();
  OemDatabase b = BuildGuide().db;
  NodeId r = b.NewComplex();
  ASSERT_TRUE(b.AddArc(4, "restaurant", r).ok());
  ASSERT_TRUE(b.AddArc(r, "name", b.NewString("Hakata")).ok());
  ASSERT_TRUE(b.AddArc(r, "price", b.NewInt(15)).ok());
  CheckDiff(a.db, b, GetParam());
}

TEST_P(DiffBothModes, ComplexToAtomicTransition) {
  Guide a = BuildGuide();
  OemDatabase b = BuildGuide().db;
  // Janta's address collapses from a complex object to a string.
  NodeId addr = b.Child(6, "address");
  for (const OutArc& arc : std::vector<OutArc>(b.OutArcs(addr))) {
    ASSERT_TRUE(b.RemArc(addr, arc.label, arc.child).ok());
  }
  ASSERT_TRUE(b.UpdNode(addr, Value::String("Lytton, Palo Alto")).ok());
  b.CollectGarbage();
  CheckDiff(a.db, b, GetParam());
}

TEST_P(DiffBothModes, SharedNodeRewiring) {
  Guide a = BuildGuide();
  OemDatabase b = BuildGuide().db;
  // Move the nearby-eats arc from Bangkok to Janta.
  Guide g = BuildGuide();
  ASSERT_TRUE(b.RemArc(7, "nearby-eats", g.bangkok).ok());
  ASSERT_TRUE(b.AddArc(7, "nearby-eats", 6).ok());
  CheckDiff(a.db, b, GetParam());
}

TEST(KeyedDiffTest, ExactOpCounts) {
  // Keyed diff of the Example 2.2 modifications recovers exactly the
  // paper's operation counts: 1 upd + 3 cre + 3 add + 1 rem.
  Guide from = BuildGuide();
  OemDatabase to = BuildGuide().db;
  ASSERT_TRUE(GuideHistory().ApplyTo(&to).ok());
  auto ops = DiffSnapshots(from.db, to, DiffMode::kKeyed);
  ASSERT_TRUE(ops.ok());
  DiffStats s = SummarizeChanges(*ops);
  EXPECT_EQ(s.creations, 3u);
  EXPECT_EQ(s.updates, 1u);
  EXPECT_EQ(s.arc_additions, 3u);
  EXPECT_EQ(s.arc_removals, 1u);
}

TEST(StructuralDiffTest, MatchesAcrossIdRenaming) {
  // The same structure with disjoint id spaces: a good matching finds
  // zero or near-zero changes; correctness requires isomorphism after
  // patching either way.
  Guide a = BuildGuide();
  // Build the second snapshot as a fresh-id copy of the first.
  OemDatabase source = a.db;
  OemDatabase fresh;
  fresh.ReserveIdsBelow(source.PeekNextId() + 100);
  auto map = CopyReachable(source, {source.root()}, &fresh, false);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(fresh.SetRoot(map->at(source.root())).ok());

  auto ops = DiffSnapshots(a.db, fresh, DiffMode::kStructural);
  ASSERT_TRUE(ops.ok());
  EXPECT_TRUE(ops->empty()) << "identical structures should fully match: "
                            << ChangeSetToString(*ops);
}

TEST(StructuralDiffTest, UpdateDetectedAcrossIdRenaming) {
  // Same structure, fresh ids, one changed value: the matcher should
  // find the update rather than recreating the subtree.
  Guide a = BuildGuide();
  OemDatabase fresh;
  fresh.ReserveIdsBelow(a.db.PeekNextId() + 100);
  auto map = CopyReachable(a.db, {a.db.root()}, &fresh, false);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(fresh.SetRoot(map->at(a.db.root())).ok());
  ASSERT_TRUE(fresh.UpdNode(map->at(1), Value::Int(20)).ok());

  auto ops = DiffSnapshots(a.db, fresh, DiffMode::kStructural);
  ASSERT_TRUE(ops.ok());
  DiffStats s = SummarizeChanges(*ops);
  EXPECT_EQ(s.updates, 1u) << ChangeSetToString(*ops);
  EXPECT_EQ(s.creations, 0u) << ChangeSetToString(*ops);
  CheckDiff(a.db, fresh, DiffMode::kStructural);
}

TEST(DiffTest, RejectsIllFormedInputs) {
  OemDatabase no_root;
  no_root.NewComplex();
  Guide g = BuildGuide();
  EXPECT_FALSE(DiffSnapshots(no_root, g.db, DiffMode::kKeyed).ok());
  EXPECT_FALSE(DiffSnapshots(g.db, no_root, DiffMode::kKeyed).ok());
}

TEST(DiffTest, StatsToString) {
  DiffStats s{1, 2, 3, 4};
  EXPECT_EQ(s.ToString(),
            "1 creations, 2 updates, 3 arc additions, 4 arc removals");
}

}  // namespace
}  // namespace doem
