// Keeps METRICS.md — the generated reference of every metric the
// codebase can emit — in lockstep with the code. A full reference stack
// (durable store + subscription service + Chorel engines + wire server)
// is stood up so every registration site runs, then the registry's
// Describe() output is rendered as the markdown table METRICS.md holds.
// A mismatch means a metric was added, renamed, or re-helped without
// regenerating the doc:
//
//   DOEM_UPDATE_METRICS_DOC=1 ./build/tests/metrics_doc_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "qss/qss.h"
#include "qss/server/server.h"
#include "store/store.h"
#include "testing/generators.h"

namespace doem {
namespace {

#ifndef DOEM_SOURCE_DIR
#error "metrics_doc_test needs -DDOEM_SOURCE_DIR=\"<repo root>\""
#endif

// Every metric family has a registration site in exactly one layer;
// touching all the layers once materializes the whole catalog.
void MaterializeAllMetrics(obs::MetricsRegistry* metrics) {
  store::StoreOptions store_opts;
  store_opts.metrics = metrics;
  store::MemoryStoreManager store_manager(store_opts);

  OemDatabase base = testing::SyntheticGuide(8);
  qss::ScriptedSource source(base,
                             testing::SyntheticGuideHistory(base, 4, 2));

  qss::QssOptions opts;
  opts.observability.metrics = metrics;   // qss.* / chorel.* / vm.* / ...
  opts.durability.store = &store_manager; // store.*

  Timestamp start = Timestamp::FromDate(1997, 1, 1);
  qss::QuerySubscriptionService service(&source, start, opts);
  qss::server::QssServer server(&service.registry());  // qss.server.*

  qss::Subscription sub;
  sub.name = "Catalog";
  sub.frequency.interval_ticks = 1;
  sub.polling_query = "select guide.restaurant";
  sub.filter_query = "select Catalog.restaurant<cre at T> where T > t[-1]";
  ASSERT_TRUE(service.Subscribe(sub, [](const qss::Notification&) {}).ok());

  // Poll a few ticks so the per-group Chorel engine (created lazily with
  // the group) registers its instrument set too.
  for (int day = 0; day < 3; ++day) {
    ASSERT_TRUE(service.AdvanceTo(Timestamp(start.ticks + day)).ok());
  }
}

std::string MarkdownEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '|') {
      out += "\\|";
    } else if (c == '\n') {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

std::string RenderDoc(const obs::MetricsRegistry& metrics) {
  std::string doc =
      "# Metrics reference\n"
      "\n"
      "Every metric the codebase can emit, generated from\n"
      "`MetricsRegistry::Describe()` by `tests/metrics_doc_test.cc` over a\n"
      "reference stack that exercises every registration site (durable\n"
      "store, subscription service, Chorel engines, wire server). Do not\n"
      "edit by hand — regenerate after adding or renaming a metric:\n"
      "\n"
      "```sh\n"
      "DOEM_UPDATE_METRICS_DOC=1 ./build/tests/metrics_doc_test\n"
      "```\n"
      "\n"
      "Prometheus exposition (`StatsRequest` over the wire, or\n"
      "`MetricsRegistry::ExportPrometheus()`) rewrites the dotted names\n"
      "below with underscores, e.g. `qss.polls_ok` -> `qss_polls_ok`.\n"
      "\n"
      "| Metric | Kind | Help |\n"
      "| --- | --- | --- |\n";
  for (const obs::MetricsRegistry::MetricInfo& info : metrics.Describe()) {
    doc += "| `" + info.name + "` | " + info.kind + " | " +
           MarkdownEscape(info.help) + " |\n";
  }
  return doc;
}

TEST(MetricsDocTest, CommittedDocMatchesTheRegistry) {
  obs::MetricsRegistry metrics;
  MaterializeAllMetrics(&metrics);

  // Guard the guard: if a layer stops registering, the doc comparison
  // would "pass" while silently documenting less. Each family must be
  // present before the doc is worth comparing.
  std::vector<std::string> families = {"qss.",   "qss.group.", "qss.notify.",
                                       "qss.server.", "chorel.", "encoding.",
                                       "index.", "vm.",         "store."};
  std::vector<obs::MetricsRegistry::MetricInfo> described =
      metrics.Describe();
  for (const std::string& family : families) {
    bool found = false;
    for (const auto& info : described) {
      if (info.name.rfind(family, 0) == 0) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "no metric in family " << family
                       << " — the reference stack no longer reaches its "
                          "registration site";
  }

  std::string rendered = RenderDoc(metrics);
  const std::string path = std::string(DOEM_SOURCE_DIR) + "/METRICS.md";

  if (std::getenv("DOEM_UPDATE_METRICS_DOC") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << rendered;
    out.close();
    ASSERT_TRUE(out.good()) << "short write to " << path;
    GTEST_SKIP() << "regenerated " << path << " (" << described.size()
                 << " metrics)";
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << path << " missing — generate it with DOEM_UPDATE_METRICS_DOC=1 "
      << "./build/tests/metrics_doc_test";
  std::stringstream committed;
  committed << in.rdbuf();
  EXPECT_EQ(committed.str(), rendered)
      << "METRICS.md is stale — regenerate with DOEM_UPDATE_METRICS_DOC=1 "
      << "./build/tests/metrics_doc_test";
}

}  // namespace
}  // namespace doem
