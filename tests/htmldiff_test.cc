#include <gtest/gtest.h>

#include "chorel/chorel.h"
#include "htmldiff/html.h"
#include "htmldiff/htmldiff.h"

namespace doem {
namespace htmldiff {
namespace {

// -------------------------------------------------------------- Parser

TEST(HtmlParserTest, BasicStructure) {
  auto db = ParseHtml(
      "<html><body><h1>Guide</h1><p>Hello <b>world</b></p></body></html>");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  NodeId html = db->Child(db->root(), "html");
  ASSERT_NE(html, kInvalidNode);
  NodeId body = db->Child(html, "body");
  NodeId h1 = db->Child(body, "h1");
  EXPECT_EQ(db->GetValue(db->Child(h1, "text"))->AsString(), "Guide");
  NodeId p = db->Child(body, "p");
  EXPECT_EQ(db->GetValue(db->Child(p, "text"))->AsString(), "Hello");
  NodeId b = db->Child(p, "b");
  EXPECT_EQ(db->GetValue(db->Child(b, "text"))->AsString(), "world");
}

TEST(HtmlParserTest, AttributesAndVoidElements) {
  auto db = ParseHtml(
      "<p class=\"intro\" id=x>line<br>two<img src='pic.png'/></p>");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  NodeId p = db->Child(db->root(), "p");
  EXPECT_EQ(db->GetValue(db->Child(p, "@class"))->AsString(), "intro");
  EXPECT_EQ(db->GetValue(db->Child(p, "@id"))->AsString(), "x");
  EXPECT_NE(db->Child(p, "br"), kInvalidNode);
  NodeId img = db->Child(p, "img");
  EXPECT_EQ(db->GetValue(db->Child(img, "@src"))->AsString(), "pic.png");
}

TEST(HtmlParserTest, CommentsDoctypeEntities) {
  auto db = ParseHtml(
      "<!DOCTYPE html><!-- hi --><p>a &amp; b &lt;c&gt; &#65;</p>");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  NodeId p = db->Child(db->root(), "p");
  EXPECT_EQ(db->GetValue(db->Child(p, "text"))->AsString(), "a & b <c> A");
}

TEST(HtmlParserTest, Errors) {
  EXPECT_FALSE(ParseHtml("<p>unclosed").ok());
  EXPECT_FALSE(ParseHtml("<p></q>").ok());
  EXPECT_FALSE(ParseHtml("<p><!-- unterminated</p>").ok());
  EXPECT_FALSE(ParseHtml("< p>bad tag</p>").ok());
  EXPECT_FALSE(ParseHtml("</p>").ok());
}

TEST(HtmlParserTest, RenderRoundTrip) {
  std::string html =
      "<html><body><h1>Guide</h1><ul><li>one</li><li a=\"1\">two</li>"
      "</ul></body></html>";
  auto db = ParseHtml(html);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(RenderHtml(*db), html);
}

// -------------------------------------------------------------- Differ

TEST(HtmlDiffTest, InsertionMarked) {
  auto r = HtmlDiff("<ul><li>Janta</li></ul>",
                    "<ul><li>Janta</li><li>Hakata</li></ul>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->markup.find("<ins class=\"hd-new\"><li>Hakata</li></ins>"),
            std::string::npos)
      << r->markup;
  EXPECT_EQ(r->markup.find("<ins class=\"hd-new\"><li>Janta"),
            std::string::npos)
      << "unchanged entry not marked: " << r->markup;
  EXPECT_GE(r->stats.creations, 1u);
}

TEST(HtmlDiffTest, DeletionKeptAndMarked) {
  auto r = HtmlDiff("<ul><li>Janta</li><li>Hakata</li></ul>",
                    "<ul><li>Janta</li></ul>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->markup.find("<del class=\"hd-del\"><li>Hakata</li></del>"),
            std::string::npos)
      << r->markup;
}

TEST(HtmlDiffTest, TextUpdateMarkedWithOldValue) {
  auto r = HtmlDiff("<p>price: <b>10</b></p>", "<p>price: <b>20</b></p>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->markup.find("data-old=\"10\""), std::string::npos)
      << r->markup;
  EXPECT_NE(r->markup.find(">20</span>"), std::string::npos) << r->markup;
  EXPECT_EQ(r->stats.updates, 1u);
}

TEST(HtmlDiffTest, IdenticalPagesUnmarked) {
  std::string page = "<html><body><p>static</p></body></html>";
  auto r = HtmlDiff(page, page);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->markup.find("hd-"), std::string::npos);
  EXPECT_EQ(r->markup, page);
}

TEST(HtmlDiffTest, ChangeQueriesOverThePage) {
  // Section 1.1's point: instead of browsing the marked-up page, query
  // the changes. The DOEM database built by htmldiff supports Chorel.
  auto r = HtmlDiff(
      "<guide><restaurant><name>Janta</name></restaurant></guide>",
      "<guide><restaurant><name>Janta</name></restaurant>"
      "<restaurant><name>Hakata</name></restaurant></guide>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto q = chorel::RunChorel(r->doem, "select guide.<add>restaurant",
                             chorel::Strategy::kDirect);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->rows.size(), 1u) << "find all new restaurant entries";
}

TEST(HtmlDiffTest, ParserErrorsPropagate) {
  EXPECT_FALSE(HtmlDiff("<p>ok</p>", "<broken").ok());
  EXPECT_FALSE(HtmlDiff("<broken", "<p>ok</p>").ok());
}

}  // namespace
}  // namespace htmldiff
}  // namespace doem
