// DESIGN.md §6f guard tests: the bytecode VM must be observationally
// identical to the tree-walking evaluator — byte-identical rows (order
// included), packaged answers, and error statuses — across the random
// query corpus, Chorel time-bound queries with polling times, and full
// QSS twin runs; cost-based step reordering must never change the rows;
// and uncovered constructs must fall back to the walker transparently.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "chorel/chorel.h"
#include "chorel/doem_view.h"
#include "doem/annotation_index.h"
#include "doem/doem.h"
#include "encoding/doem_text.h"
#include "lorel/eval.h"
#include "obs/metrics.h"
#include "qss/qss.h"
#include "qss/source.h"
#include "testing/generators.h"
#include "vm/bytecode.h"
#include "vm/compile.h"
#include "vm/cost.h"
#include "vm/vm.h"

namespace doem {
namespace {

using testing::ChorelQueryCorpus;
using testing::DatabaseOptions;
using testing::HistoryOptions;
using testing::RandomDatabase;
using testing::RandomHistory;

// Two engine runs are "identical" when they agree on success/failure,
// the error text, the row text (order included), and the packaged
// answer database.
void ExpectSameResult(const Result<lorel::QueryResult>& a,
                      const Result<lorel::QueryResult>& b,
                      const std::string& context) {
  ASSERT_EQ(a.ok(), b.ok()) << context << "\n"
                            << (a.ok() ? b.status() : a.status()).ToString();
  if (!a.ok()) {
    EXPECT_EQ(a.status().ToString(), b.status().ToString()) << context;
    return;
  }
  EXPECT_EQ(a->RowsToString(), b->RowsToString()) << context;
  EXPECT_TRUE(a->answer.Equals(b->answer)) << context;
}

class VmDifferentialTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  DoemDatabase MakeDoem() const {
    DatabaseOptions dbo;
    dbo.seed = GetParam();
    dbo.node_count = 60 + GetParam() % 40;
    dbo.label_alphabet = 4 + GetParam() % 3;
    OemDatabase db = RandomDatabase(dbo);
    HistoryOptions ho;
    ho.seed = GetParam() * 7 + 1;
    ho.steps = 5 + GetParam() % 5;
    ho.ops_per_step = 4 + GetParam() % 5;
    auto d = DoemDatabase::Build(db, RandomHistory(db, ho));
    EXPECT_TRUE(d.ok()) << d.status().ToString();
    return std::move(d).value();
  }

  size_t alphabet() const { return 4 + GetParam() % 3; }
};

INSTANTIATE_TEST_SUITE_P(Seeds, VmDifferentialTest, ::testing::Range(1u, 13u));

// The core acceptance property: over the whole query corpus, both
// strategies, and both seeding modes, the VM-backed engine returns
// byte-identical results to a walker-only engine — and a verify_vm
// engine (which cross-checks every run internally) never trips.
TEST_P(VmDifferentialTest, VmMatchesTreeWalkerOverCorpus) {
  DoemDatabase d = MakeDoem();
  for (bool seed : {false, true}) {
    chorel::ChorelEngineOptions vm_on;
    vm_on.seed_from_index = seed;
    chorel::ChorelEngineOptions vm_off = vm_on;
    vm_off.use_vm = false;
    chorel::ChorelEngineOptions checked = vm_on;
    checked.verify_vm = true;
    chorel::ChorelEngine fast(d, vm_on);
    chorel::ChorelEngine slow(d, vm_off);
    chorel::ChorelEngine veri(d, checked);
    for (const std::string& q : ChorelQueryCorpus(alphabet())) {
      for (chorel::Strategy strategy :
           {chorel::Strategy::kDirect, chorel::Strategy::kTranslated}) {
        auto a = fast.Run(q, strategy);
        auto b = slow.Run(q, strategy);
        ExpectSameResult(a, b, q);
        auto c = veri.Run(q, strategy);
        ExpectSameResult(c, b, "verify_vm: " + q);
      }
    }
  }
}

// max_rows is a row-count error raised mid-enumeration; the VM must
// surface exactly the walker's status (via fallback when it cannot).
TEST_P(VmDifferentialTest, MaxRowsStatusParity) {
  DoemDatabase d = MakeDoem();
  chorel::ChorelEngineOptions vm_off;
  vm_off.use_vm = false;
  chorel::ChorelEngine fast(d);
  chorel::ChorelEngine slow(d, vm_off);
  lorel::EvalOptions opts;
  opts.max_rows = 3;
  for (const std::string& q : ChorelQueryCorpus(alphabet())) {
    for (chorel::Strategy strategy :
         {chorel::Strategy::kDirect, chorel::Strategy::kTranslated}) {
      ExpectSameResult(fast.Run(q, strategy, opts),
                       slow.Run(q, strategy, opts), "max_rows=3: " + q);
    }
  }
}

// ------------------------------------------ polling-time queries

// Chorel filter queries with QSS time variables (t[0], t[-1], ...) over
// a churning guide: the VM resolves the same windows, seeds from the
// same index postings, and returns the same rows at every poll.
TEST(VmPollingTimeTest, TimeWindowQueriesMatchWalkerEveryPoll) {
  OemDatabase guide = testing::SyntheticGuide(14);
  OemHistory churn = testing::SyntheticGuideChurn(guide, 10, 4);
  auto d = DoemDatabase::Build(guide, churn);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  const std::vector<std::string> queries = {
      "select guide.restaurant<cre at T> where T > t[-1]",
      "select T, OV, NV from guide.restaurant.price"
      "<upd at T from OV to NV> where T > t[-1] and T <= t[0]",
      "select X from guide.<add at T>restaurant X where T > t[-1]",
      "select R, T from guide.restaurant.<rem at T>parking R "
      "where T > t[-2]",
  };
  for (bool seed : {false, true}) {
    chorel::ChorelEngineOptions vm_on;
    vm_on.seed_from_index = seed;
    chorel::ChorelEngineOptions vm_off = vm_on;
    vm_off.use_vm = false;
    chorel::ChorelEngine fast(*d, vm_on);
    chorel::ChorelEngine slow(*d, vm_off);
    std::vector<Timestamp> polls;
    polls.push_back(Timestamp(0));
    for (const HistoryStep& step : churn.steps()) {
      polls.push_back(step.time);
      lorel::EvalOptions opts;
      opts.polling_times = &polls;
      for (const std::string& q : queries) {
        for (chorel::Strategy strategy :
             {chorel::Strategy::kDirect, chorel::Strategy::kTranslated}) {
          ExpectSameResult(fast.Run(q, strategy, opts),
                           slow.Run(q, strategy, opts),
                           q + " @" + std::to_string(polls.size()));
        }
      }
    }
  }
}

// ------------------------------------------ cost-based reordering

// A database engineered so the left-to-right nesting is the wrong one:
// `wide` has many children, `rare` has two.
OemDatabase SkewedDb() {
  OemDatabase db;
  NodeId root = db.NewComplex();
  void(db.SetRoot(root));
  for (int i = 0; i < 64; ++i) {
    NodeId n = db.NewInt(i);
    void(db.AddArc(root, "wide", n));
  }
  for (int i = 0; i < 2; ++i) {
    NodeId n = db.NewInt(100 + i);
    void(db.AddArc(root, "rare", n));
  }
  return db;
}

// The compiler marks multi-definition, time-travel-free programs
// reorderable; the planner then schedules the cheap slot outermost.
TEST(VmCostModelTest, PlannerPutsNarrowSlotOutermost) {
  auto d = DoemDatabase::Build(SkewedDb(), OemHistory());
  ASSERT_TRUE(d.ok());
  auto nq = lorel::ParseAndNormalize("select X, Y from wide X, rare Y");
  ASSERT_TRUE(nq.ok()) << nq.status().ToString();
  auto p = vm::Compile(*nq);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_TRUE(p->reorderable);
  chorel::DoemView view(*d, nullptr);
  vm::BoundsMap bounds = vm::ReplayBounds(*p, {});
  EXPECT_GT(vm::EstimateSlot(*p, 0, view, bounds),
            vm::EstimateSlot(*p, 1, view, bounds));
  std::vector<uint32_t> order = vm::PlanOrder(*p, view, bounds);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);  // rare runs outermost
  EXPECT_EQ(order[1], 0u);
}

// Reordered execution must be invisible in the output: rows come back
// in the walker's nesting order even though the loops ran inverted.
TEST(VmCostModelTest, ReorderedRunIsByteIdenticalToWalker) {
  auto d = DoemDatabase::Build(SkewedDb(), OemHistory());
  ASSERT_TRUE(d.ok());
  auto nq = lorel::ParseAndNormalize(
      "select X, Y from wide X, rare Y where X < 5");
  ASSERT_TRUE(nq.ok());
  auto p = vm::Compile(*nq);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  chorel::DoemView view(*d, nullptr);
  vm::RunInfo info;
  auto got = vm::Run(*p, view, {}, &info);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(info.reordered);
  auto want = lorel::Evaluate(*nq, view);
  ASSERT_TRUE(want.ok());
  EXPECT_FALSE(want->rows.empty());
  EXPECT_EQ(got->RowsToString(), want->RowsToString());
  EXPECT_TRUE(got->answer.Equals(want->answer));
}

// A statistics-free nesting (dependent path steps) and a single-slot
// query keep the identity order — no reorder, no rank machinery.
TEST(VmCostModelTest, DependentSlotsKeepIdentityOrder) {
  auto d = DoemDatabase::Build(SkewedDb(), OemHistory());
  ASSERT_TRUE(d.ok());
  auto nq = lorel::ParseAndNormalize("select wide");
  ASSERT_TRUE(nq.ok());
  auto p = vm::Compile(*nq);
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->reorderable);
  chorel::DoemView view(*d, nullptr);
  vm::RunInfo info;
  auto got = vm::Run(*p, view, {}, &info);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(info.reordered);
}

// The engine counts reordered runs and still matches the walker.
TEST(VmCostModelTest, EngineReordersAndCountsIt) {
  auto d = DoemDatabase::Build(SkewedDb(), OemHistory());
  ASSERT_TRUE(d.ok());
  obs::MetricsRegistry metrics;
  chorel::ChorelEngineOptions vm_on;
  vm_on.metrics = &metrics;
  chorel::ChorelEngineOptions vm_off;
  vm_off.use_vm = false;
  chorel::ChorelEngine fast(*d, vm_on);
  chorel::ChorelEngine slow(*d, vm_off);
  const std::string q = "select X, Y from wide X, rare Y where X < 9";
  auto a = fast.Run(q, chorel::Strategy::kDirect);
  auto b = slow.Run(q, chorel::Strategy::kDirect);
  ExpectSameResult(a, b, q);
  EXPECT_EQ(metrics.GetCounter("vm.runs", "")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("vm.reordered_runs", "")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("vm.verify_failures", "")->value(), 0u);
}

// ------------------------------------------ fallback coverage

// `exists` is outside VM coverage: compilation fails once (sticky), the
// walker answers, and the rows are exactly the walker's.
TEST(VmFallbackTest, ExistsQueryFallsBackToWalker) {
  OemDatabase guide = testing::SyntheticGuide(10);
  auto d = DoemDatabase::Build(guide, testing::SyntheticGuideHistory(guide, 4, 3));
  ASSERT_TRUE(d.ok());
  obs::MetricsRegistry metrics;
  chorel::ChorelEngineOptions vm_on;
  vm_on.metrics = &metrics;
  chorel::ChorelEngineOptions vm_off;
  vm_off.use_vm = false;
  chorel::ChorelEngine fast(*d, vm_on);
  chorel::ChorelEngine slow(*d, vm_off);
  const std::string q =
      "select X from guide.restaurant X "
      "where exists Y in X.name : Y = Y";
  auto compiled = chorel::CompileChorel(q);
  ASSERT_TRUE(compiled.ok());
  for (int i = 0; i < 3; ++i) {
    auto a = fast.RunCompiled(&*compiled, chorel::Strategy::kDirect);
    auto b = slow.Run(q, chorel::Strategy::kDirect);
    ExpectSameResult(a, b, q);
    ASSERT_TRUE(a.ok());
    EXPECT_FALSE(a->rows.empty());
  }
  // One sticky compile failure, zero VM executions, three walker runs.
  EXPECT_EQ(metrics.GetCounter("vm.compile_fallbacks", "")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("vm.runs", "")->value(), 0u);
  EXPECT_EQ(metrics.GetCounter("vm.compiles", "")->value(), 0u);
}

// A supported query on the same engine still compiles and runs on the
// VM — fallback is per-query, not per-engine.
TEST(VmFallbackTest, SupportedQueryStillCompiles) {
  OemDatabase guide = testing::SyntheticGuide(6);
  auto d = DoemDatabase::Build(guide, OemHistory());
  ASSERT_TRUE(d.ok());
  obs::MetricsRegistry metrics;
  chorel::ChorelEngineOptions vm_on;
  vm_on.metrics = &metrics;
  chorel::ChorelEngine engine(*d, vm_on);
  auto r = engine.Run("select guide.restaurant.name",
                      chorel::Strategy::kDirect);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->rows.empty());
  EXPECT_EQ(metrics.GetCounter("vm.compiles", "")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("vm.runs", "")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("vm.compile_fallbacks", "")->value(), 0u);
  EXPECT_GT(metrics.GetGauge("vm.program_instructions", "")->value(), 0);
}

// ------------------------------------------ cost-model inputs (gauges)

// The satellite accessors: annotation-index posting sizes and the label
// statistic surface as chorel.* gauges once the index is built.
TEST(VmMetricsTest, CostModelInputGaugesArePublished) {
  OemDatabase guide = testing::SyntheticGuide(8);
  OemHistory churn = testing::SyntheticGuideChurn(guide, 6, 4);
  auto d = DoemDatabase::Build(guide, churn);
  ASSERT_TRUE(d.ok());
  obs::MetricsRegistry metrics;
  chorel::ChorelEngineOptions opts;
  opts.seed_from_index = true;
  opts.metrics = &metrics;
  chorel::ChorelEngine engine(*d, opts);
  auto r = engine.Run("select guide.restaurant<cre at T> where T > 0",
                      chorel::Strategy::kDirect);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  AnnotationIndex fresh(*d);
  EXPECT_EQ(metrics.GetGauge("chorel.index_postings_cre", "")->value(),
            static_cast<int64_t>(fresh.cre_count()));
  EXPECT_EQ(metrics.GetGauge("chorel.index_postings_upd", "")->value(),
            static_cast<int64_t>(fresh.upd_count()));
  EXPECT_EQ(metrics.GetGauge("chorel.index_postings_add", "")->value(),
            static_cast<int64_t>(fresh.add_count()));
  EXPECT_EQ(metrics.GetGauge("chorel.index_postings_rem", "")->value(),
            static_cast<int64_t>(fresh.rem_count()));
  EXPECT_GT(metrics.GetGauge("chorel.distinct_labels", "")->value(), 0);
}

// ------------------------------------------ disassembler smoke

TEST(VmBytecodeTest, DisassembleListsOpcodes) {
  auto nq = lorel::ParseAndNormalize(
      "select guide.restaurant<cre at T> where T > 100");
  ASSERT_TRUE(nq.ok());
  auto p = vm::Compile(*nq);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  std::string listing = p->Disassemble();
  EXPECT_NE(listing.find("SeedAnn"), std::string::npos) << listing;
  EXPECT_NE(listing.find("Emit"), std::string::npos) << listing;
  EXPECT_NE(listing.find("Halt"), std::string::npos) << listing;
}

// ------------------------------------------ QSS twin runs

// End-to-end: a subscription service filtering on the VM produces
// byte-identical histories, notification rows, and report counters to
// one pinned to the tree walker. The VM run also self-checks every
// filter evaluation (verify_vm_filter), so any divergence fails twice.
struct QssRun {
  std::map<std::string, std::string> history_text;
  std::vector<std::string> notifications;
  std::vector<std::string> errors;
  size_t polls_ok = 0;
  size_t polls_failed = 0;
};

QssRun RunQssScenario(bool vm) {
  OemDatabase base = testing::SyntheticGuide(12);
  OemHistory script = testing::SyntheticGuideHistory(base, 10, 4);
  qss::ScriptedSource source(base, script, /*preserve_ids=*/true);
  Timestamp start = Timestamp::FromDate(1997, 1, 1);

  qss::QssOptions opts;
  opts.acceleration.vm_filter = vm;
  opts.acceleration.verify_vm_filter = vm;
  qss::QuerySubscriptionService service(&source, start, opts);

  QssRun out;
  auto subscribe = [&](const std::string& name, const std::string& filter) {
    qss::Subscription sub;
    sub.name = name;
    sub.frequency = *qss::FrequencySpec::Parse("every 1 ticks");
    sub.polling_query = "select guide.restaurant";
    sub.filter_query = filter;
    Status st = service.Subscribe(
        sub, [&out, name](const qss::Notification& n) {
          out.notifications.push_back(
              name + "@" + std::to_string(n.poll_time.ticks) + "#" +
              std::to_string(n.poll_index) + "\n" + n.result.RowsToString());
        });
    ASSERT_TRUE(st.ok()) << st.ToString();
  };
  subscribe("Cre", "select Cre.restaurant<cre at T> where T > t[-1]");
  subscribe("Upd",
            "select T, OV, NV from Upd.restaurant.price"
            "<upd at T from OV to NV> where T > t[-1]");
  subscribe("Rem",
            "select R, T from Rem.restaurant.<rem at T>parking R "
            "where T > t[-1]");
  if (::testing::Test::HasFatalFailure()) return out;

  qss::PollReport report;
  for (int i = 0; i < 10; ++i) {
    Timestamp t(service.now().ticks + 1);
    Status st = service.AdvanceTo(t, &report);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  for (const std::string name : {"Cre", "Upd", "Rem"}) {
    const DoemDatabase* d = service.History(name);
    if (d != nullptr) out.history_text[name] = WriteDoemText(*d);
  }
  for (const qss::PollError& e : report.errors) {
    out.errors.push_back(e.subject + "@" + std::to_string(e.time.ticks) +
                         ":" + e.status.ToString());
  }
  out.polls_ok = report.polls_ok;
  out.polls_failed = report.polls_failed;
  return out;
}

TEST(VmQssTest, VmFilteredServiceMatchesWalkerFilteredService) {
  QssRun vm = RunQssScenario(true);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  QssRun walker = RunQssScenario(false);
  EXPECT_TRUE(vm.errors.empty())
      << "verify_vm_filter tripped: " << vm.errors.front();
  EXPECT_FALSE(vm.notifications.empty())
      << "comparison is vacuous: no notifications fired";
  EXPECT_EQ(vm.history_text, walker.history_text);
  EXPECT_EQ(vm.notifications, walker.notifications);
  EXPECT_EQ(vm.errors, walker.errors);
  EXPECT_EQ(vm.polls_ok, walker.polls_ok);
  EXPECT_EQ(vm.polls_failed, walker.polls_failed);
}

}  // namespace
}  // namespace doem
