#include <gtest/gtest.h>

#include "oem/history_text.h"
#include "testing/generators.h"
#include "testing/guide.h"

namespace doem {
namespace {

TEST(HistoryTextTest, WritesGuideHistoryReadably) {
  std::string text = WriteHistoryText(testing::GuideHistory());
  EXPECT_NE(text.find("@1Jan1997"), std::string::npos);
  EXPECT_NE(text.find("upd 1 20"), std::string::npos);
  EXPECT_NE(text.find("cre 3 \"Hakata\""), std::string::npos);
  EXPECT_NE(text.find("rem 6 parking 7"), std::string::npos);
}

TEST(HistoryTextTest, RoundTripsGuideHistory) {
  OemHistory h = testing::GuideHistory();
  auto parsed = ParseHistoryText(WriteHistoryText(h));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->Equals(h));
}

TEST(HistoryTextTest, RoundTripsRandomHistories) {
  for (uint32_t seed = 1; seed <= 10; ++seed) {
    testing::DatabaseOptions dbo;
    dbo.seed = seed;
    OemDatabase base = testing::RandomDatabase(dbo);
    testing::HistoryOptions ho;
    ho.seed = seed + 50;
    OemHistory h = testing::RandomHistory(base, ho);
    auto parsed = ParseHistoryText(WriteHistoryText(h));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_TRUE(parsed->Equals(h)) << "seed " << seed;
  }
}

TEST(HistoryTextTest, ParsesHandWrittenScript) {
  auto h = ParseHistoryText(R"(
# the Example 2.2 modifications
@1Jan97
upd 1 20
cre 2 C
cre 3 "Hakata"
add 4 restaurant 2
add 2 name 3
@5Jan97
cre 5 "need info"
add 2 comment 5
@8Jan97
rem 6 parking 7
)");
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  EXPECT_TRUE(h->Equals(testing::GuideHistory()));
  // And it really applies.
  OemDatabase db = testing::BuildGuide().db;
  EXPECT_TRUE(h->ApplyTo(&db).ok());
}

TEST(HistoryTextTest, QuotedLabels) {
  ChangeSet ops = {ChangeOp::AddArc(1, "has space", 2),
                   ChangeOp::RemArc(3, "x\"y", 4)};
  auto parsed = ParseChangeSetText(WriteChangeSetText(ops));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(ChangeSetEquals(*parsed, ops));
}

TEST(HistoryTextTest, Errors) {
  EXPECT_FALSE(ParseHistoryText("upd 1 2").ok())
      << "op before the first @time";
  EXPECT_FALSE(ParseHistoryText("@notatime\nupd 1 2").ok());
  EXPECT_FALSE(ParseHistoryText("@10\nfrob 1 2").ok());
  EXPECT_FALSE(ParseHistoryText("@10\nadd 1 x").ok()) << "missing child";
  EXPECT_FALSE(ParseHistoryText("@10\nupd 1").ok()) << "missing value";
  EXPECT_FALSE(ParseHistoryText("@10\nadd 1 x 2 extra").ok());
  EXPECT_FALSE(ParseHistoryText("@10\n@5\n").ok())
      << "timestamps must increase";
  EXPECT_FALSE(ParseChangeSetText("@10\nupd 1 2").ok())
      << "no headers in bare change sets";
  // Empty inputs are fine.
  EXPECT_TRUE(ParseHistoryText("").ok());
  EXPECT_TRUE(ParseChangeSetText("# only a comment\n").ok());
}

}  // namespace
}  // namespace doem
