// DESIGN.md §6c guard tests: the incrementally maintained query caches —
// the Section 5.1 OEM encoding patched by IncrementalEncoder and the
// AnnotationIndex kept current with Apply — must be observationally
// identical to from-scratch rebuilds, and index-seeded evaluation must
// return exactly the rows of scan evaluation. The QSS twin-run test at
// the bottom pins the end-to-end property: a service with incremental
// maintenance produces byte-identical histories, notification rows, and
// reports to one that rebuilds every poll.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "chorel/chorel.h"
#include "doem/annotation_index.h"
#include "encoding/doem_text.h"
#include "encoding/encode.h"
#include "encoding/encode_incremental.h"
#include "oem/graph_compare.h"
#include "qss/executor.h"
#include "qss/qss.h"
#include "testing/generators.h"

namespace doem {
namespace {

// ------------------------------------------ AnnotationIndex::Apply

// Replaying a history step by step through Apply must match a fresh
// index build after every step (exact posting equality — canonical
// ordering makes the two bit-for-bit identical).
void ExpectApplyTracksFreshBuild(const OemDatabase& base,
                                 const OemHistory& history) {
  auto d = DoemDatabase::FromSnapshot(base);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  AnnotationIndex maintained(*d);
  for (const HistoryStep& step : history.steps()) {
    ASSERT_TRUE(d->ApplyChangeSet(step.time, step.changes).ok());
    Status s = maintained.Apply(*d, step.time, step.changes);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_TRUE(maintained == AnnotationIndex(*d))
        << "maintained index diverges at t=" << step.time.ticks;
  }
}

TEST(AnnotationIndexApplyTest, TracksFreshBuildOnGuideHistories) {
  OemDatabase guide = testing::SyntheticGuide(12);
  ExpectApplyTracksFreshBuild(guide,
                              testing::SyntheticGuideHistory(guide, 10, 4));
  ExpectApplyTracksFreshBuild(guide,
                              testing::SyntheticGuideChurn(guide, 10, 4));
}

TEST(AnnotationIndexApplyTest, TracksFreshBuildOnRandomHistories) {
  for (uint32_t seed = 1; seed <= 4; ++seed) {
    testing::DatabaseOptions dbo;
    dbo.seed = seed;
    dbo.node_count = 60;
    OemDatabase base = testing::RandomDatabase(dbo);
    testing::HistoryOptions ho;
    ho.seed = seed + 900;
    ho.steps = 10;
    ExpectApplyTracksFreshBuild(base, testing::RandomHistory(base, ho));
  }
}

TEST(AnnotationIndexApplyTest, RejectsNonMonotoneTimestamp) {
  OemDatabase guide = testing::SyntheticGuide(6);
  OemHistory history = testing::SyntheticGuideChurn(guide, 3, 2);
  auto d = DoemDatabase::Build(guide, history);
  ASSERT_TRUE(d.ok());
  AnnotationIndex index(*d);
  Timestamp stale = history.steps().back().time;  // == newest indexed
  Status s = index.Apply(*d, stale, {});
  EXPECT_FALSE(s.ok());
}

// ------------------------------------------ IncrementalEncoder

// After every patched step the maintained encoding must decode back to
// the database, and must stay isomorphic to a fresh EncodeDoem (equal up
// to auxiliary-node renaming — the maintainer allocates auxiliary ids in
// its reserved band, so exact graph equality is not expected).
void ExpectEncoderTracksFullEncode(const OemDatabase& base,
                                   const OemHistory& history) {
  auto d = DoemDatabase::FromSnapshot(base);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  auto enc = IncrementalEncoder::Create(*d);
  ASSERT_TRUE(enc.ok()) << enc.status().ToString();
  for (const HistoryStep& step : history.steps()) {
    ASSERT_TRUE(d->ApplyChangeSet(step.time, step.changes).ok());
    Status s = enc->ApplyDelta(*d, step.time, step.changes);
    ASSERT_TRUE(s.ok()) << s.ToString();
    auto decoded = DecodeDoem(enc->encoding());
    ASSERT_TRUE(decoded.ok())
        << "t=" << step.time.ticks << ": " << decoded.status().ToString();
    EXPECT_TRUE(decoded->Equals(*d))
        << "patched encoding decodes to a different database at t="
        << step.time.ticks;
    auto fresh = EncodeDoem(*d);
    ASSERT_TRUE(fresh.ok());
    EXPECT_TRUE(Isomorphic(enc->encoding(), *fresh))
        << "patched encoding not isomorphic to fresh encode at t="
        << step.time.ticks;
  }
}

TEST(IncrementalEncoderTest, TracksFullEncodeOnGuideHistories) {
  OemDatabase guide = testing::SyntheticGuide(12);
  ExpectEncoderTracksFullEncode(guide,
                                testing::SyntheticGuideHistory(guide, 10, 4));
  ExpectEncoderTracksFullEncode(guide,
                                testing::SyntheticGuideChurn(guide, 10, 4));
}

TEST(IncrementalEncoderTest, TracksFullEncodeOnRandomHistories) {
  for (uint32_t seed = 1; seed <= 4; ++seed) {
    testing::DatabaseOptions dbo;
    dbo.seed = seed;
    dbo.node_count = 50;
    OemDatabase base = testing::RandomDatabase(dbo);
    testing::HistoryOptions ho;
    ho.seed = seed + 500;
    ho.steps = 8;
    ExpectEncoderTracksFullEncode(base, testing::RandomHistory(base, ho));
  }
}

TEST(IncrementalEncoderTest, HandlesRemReAddAndStillbornOps) {
  // root -a-> c, root -b-> c (so c survives removing one arc),
  // root -x-> p (complex) -y-> c.
  OemDatabase base;
  NodeId root = base.NewComplex();
  ASSERT_TRUE(base.SetRoot(root).ok());
  NodeId c = base.NewInt(1);
  NodeId p = base.NewComplex();
  ASSERT_TRUE(base.AddArc(root, "a", c).ok());
  ASSERT_TRUE(base.AddArc(root, "b", c).ok());
  ASSERT_TRUE(base.AddArc(root, "x", p).ok());
  ASSERT_TRUE(base.AddArc(p, "y", c).ok());

  OemHistory history;
  // Atomic -> atomic update with a kind change.
  ASSERT_TRUE(
      history.Append(Timestamp(10), {ChangeOp::UpdNode(c, Value::String("s"))})
          .ok());
  // Remove, then re-add, the same physical arc (appends to the existing
  // history object rather than minting a new one).
  ASSERT_TRUE(
      history.Append(Timestamp(20), {ChangeOp::RemArc(root, "a", c)}).ok());
  ASSERT_TRUE(
      history.Append(Timestamp(30), {ChangeOp::AddArc(root, "a", c)}).ok());
  // A stillborn node: created but never linked, pruned by the DOEM
  // manager — the encoder must skip it exactly as a fresh encode never
  // sees it. The update keeps the change set observable.
  ASSERT_TRUE(history
                  .Append(Timestamp(40),
                          {ChangeOp::CreNode(999, Value::Int(5)),
                           ChangeOp::UpdNode(c, Value::Int(2))})
                  .ok());
  // A brand-new node and arc (new history object via PatchAddArc).
  ASSERT_TRUE(history
                  .Append(Timestamp(50),
                          {ChangeOp::CreNode(1000, Value::Int(7)),
                           ChangeOp::AddArc(p, "z", 1000)})
                  .ok());
  ExpectEncoderTracksFullEncode(base, history);
}

TEST(IncrementalEncoderTest, RejectsDoemIdsInTheAuxiliaryBand) {
  OemDatabase base;
  NodeId root = base.NewComplex();
  ASSERT_TRUE(base.SetRoot(root).ok());
  ASSERT_TRUE(
      base.CreNode(IncrementalEncoder::kAuxIdBase + 1, Value::Int(1)).ok());
  ASSERT_TRUE(
      base.AddArc(root, "a", IncrementalEncoder::kAuxIdBase + 1).ok());
  auto d = DoemDatabase::FromSnapshot(std::move(base));
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(IncrementalEncoder::Create(*d).ok());
}

// ------------------------------------------ Index-seeded evaluation

std::vector<std::string> SortedRowKeys(const lorel::QueryResult& r) {
  std::vector<std::string> keys;
  for (const auto& row : r.rows) {
    std::string k;
    for (const lorel::RtVal& v : row) k += v.Key() + "|";
    keys.push_back(std::move(k));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// Every corpus query, both strategies: an engine with index seeding
// enabled returns exactly the rows of a plain engine (order may differ;
// compare as sorted keys), and agrees on which queries fail.
TEST(IndexSeedingTest, SeededRowsMatchScanRowsOnCorpus) {
  for (uint32_t seed = 1; seed <= 4; ++seed) {
    testing::DatabaseOptions dbo;
    dbo.seed = seed;
    OemDatabase base = testing::RandomDatabase(dbo);
    testing::HistoryOptions ho;
    ho.seed = seed + 300;
    auto d = DoemDatabase::Build(base, testing::RandomHistory(base, ho));
    ASSERT_TRUE(d.ok());
    chorel::ChorelEngine plain(*d);
    chorel::ChorelEngineOptions seeded_opts;
    seeded_opts.seed_from_index = true;
    chorel::ChorelEngine seeded(*d, seeded_opts);
    for (const std::string& query : testing::ChorelQueryCorpus(8)) {
      for (chorel::Strategy strategy :
           {chorel::Strategy::kDirect, chorel::Strategy::kTranslated}) {
        auto a = plain.Run(query, strategy);
        auto b = seeded.Run(query, strategy);
        ASSERT_EQ(a.ok(), b.ok())
            << query << ": seeded and plain disagree on status ("
            << (a.ok() ? b.status().ToString() : a.status().ToString())
            << ")";
        if (!a.ok()) continue;
        EXPECT_EQ(SortedRowKeys(*a), SortedRowKeys(*b)) << query;
      }
    }
  }
}

// The QSS filter shape — annotation time variables bounded by t[i]
// references — with polling times supplied.
TEST(IndexSeedingTest, SeededRowsMatchScanWithPollingTimes) {
  OemDatabase guide = testing::SyntheticGuide(10);
  OemHistory history = testing::SyntheticGuideHistory(guide, 8, 4);
  auto d = DoemDatabase::Build(guide, history);
  ASSERT_TRUE(d.ok());
  std::vector<Timestamp> polls;
  for (size_t i = 0; i < history.size(); i += 2) {
    polls.push_back(history.steps()[i].time);
  }
  lorel::EvalOptions opts;
  opts.polling_times = &polls;

  chorel::ChorelEngine plain(*d);
  chorel::ChorelEngineOptions seeded_opts;
  seeded_opts.seed_from_index = true;
  chorel::ChorelEngine seeded(*d, seeded_opts);
  const std::vector<std::string> queries = {
      "select guide.restaurant<cre at T> where T > t[-1]",
      "select guide.restaurant<cre at T> where T > t[-2] and T <= t[0]",
      "select T, OV, NV from guide.restaurant.price"
      "<upd at T from OV to NV> where T > t[-1]",
      "select R, T from guide.<add at T>restaurant R where T > t[-1]",
      "select R, T from guide.<rem at T>restaurant R where T > t[-1]",
  };
  size_t total_rows = 0;
  for (const std::string& query : queries) {
    for (chorel::Strategy strategy :
         {chorel::Strategy::kDirect, chorel::Strategy::kTranslated}) {
      auto a = plain.Run(query, strategy, opts);
      auto b = seeded.Run(query, strategy, opts);
      ASSERT_TRUE(a.ok()) << query << ": " << a.status().ToString();
      ASSERT_TRUE(b.ok()) << query << ": " << b.status().ToString();
      EXPECT_EQ(SortedRowKeys(*a), SortedRowKeys(*b)) << query;
      total_rows += a->rows.size();
    }
  }
  EXPECT_GT(total_rows, 0u) << "comparison is vacuous: no query matched";
}

// ------------------------------------------ ChorelEngine::ApplyDelta

TEST(ChorelEngineTest, ApplyDeltaKeepsCachesCurrentAndVerifies) {
  OemDatabase guide = testing::SyntheticGuide(10);
  OemHistory history = testing::SyntheticGuideHistory(guide, 8, 4);
  auto d = DoemDatabase::FromSnapshot(guide);
  ASSERT_TRUE(d.ok());
  chorel::ChorelEngineOptions opts;
  opts.seed_from_index = true;
  opts.verify_incremental = true;  // cross-check after every delta
  chorel::ChorelEngine engine(*d, opts);
  const std::string query =
      "select guide.restaurant<cre at T> where T > 0";
  for (const HistoryStep& step : history.steps()) {
    ASSERT_TRUE(d->ApplyChangeSet(step.time, step.changes).ok());
    Status s = engine.ApplyDelta(step.time, step.changes);
    ASSERT_TRUE(s.ok()) << s.ToString();
    for (chorel::Strategy strategy :
         {chorel::Strategy::kDirect, chorel::Strategy::kTranslated}) {
      auto cached = engine.Run(query, strategy);
      auto fresh = chorel::RunChorel(*d, query, strategy);
      ASSERT_TRUE(cached.ok()) << cached.status().ToString();
      ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
      EXPECT_EQ(SortedRowKeys(*cached), SortedRowKeys(*fresh));
    }
  }
}

// ------------------------------------------ QSS twin runs

// Everything observable about one service run (timing counters, the one
// intentionally nondeterministic part, left out). Notifications include
// the full row text, so "byte-identical rows" is pinned, not just
// counts.
struct QssRun {
  std::map<std::string, std::string> history_text;
  std::vector<std::string> notifications;
  std::vector<std::string> errors;
  size_t polls_ok = 0;
  size_t polls_failed = 0;
  size_t notification_count = 0;
};

void ExpectSameQssRun(const QssRun& a, const QssRun& b) {
  EXPECT_EQ(a.history_text, b.history_text)
      << "DOEM histories must be byte-identical";
  EXPECT_EQ(a.notifications, b.notifications)
      << "notification rows must be byte-identical";
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.polls_ok, b.polls_ok);
  EXPECT_EQ(a.polls_failed, b.polls_failed);
  EXPECT_EQ(a.notification_count, b.notification_count);
}

struct QssConfig {
  bool incremental = true;
  chorel::Strategy strategy = chorel::Strategy::kDirect;
  qss::HistoryRetention retention = qss::HistoryRetention::kFull;
  qss::Executor* executor = nullptr;
};

QssRun RunQssScenario(const QssConfig& config) {
  OemDatabase base = testing::SyntheticGuide(16);
  OemHistory script = testing::SyntheticGuideHistory(base, 12, 4);
  qss::ScriptedSource source(base, script, /*preserve_ids=*/true);
  Timestamp start = Timestamp::FromDate(1997, 1, 1);

  qss::QssOptions opts;
  opts.strategy = config.strategy;
  opts.retention = config.retention;
  opts.acceleration.incremental_filter = config.incremental;
  // Cross-check the maintained caches against rebuilds on every poll;
  // any divergence shows up as a filter error and fails the run
  // comparison.
  opts.acceleration.verify_incremental_filter = config.incremental;
  opts.executor = config.executor;
  qss::QuerySubscriptionService service(&source, start, opts);

  QssRun out;
  auto subscribe = [&](const std::string& name, const std::string& filter) {
    qss::Subscription sub;
    sub.name = name;
    sub.frequency = *qss::FrequencySpec::Parse("every 1 ticks");
    sub.polling_query = "select guide.restaurant";
    sub.filter_query = filter;
    Status st = service.Subscribe(sub, [&out, name](
                                           const qss::Notification& n) {
      out.notifications.push_back(
          name + "@" + std::to_string(n.poll_time.ticks) + "#" +
          std::to_string(n.poll_index) + "\n" + n.result.RowsToString());
    });
    ASSERT_TRUE(st.ok()) << st.ToString();
  };
  subscribe("Cre", "select Cre.restaurant<cre at T> where T > t[-1]");
  subscribe("Upd",
            "select T, OV, NV from Upd.restaurant.price"
            "<upd at T from OV to NV> where T > t[-1]");
  subscribe("Rem",
            "select R, T from Rem.restaurant.<rem at T>parking R "
            "where T > t[-1]");
  if (::testing::Test::HasFatalFailure()) return out;

  qss::PollReport report;
  for (int i = 0; i < 12; ++i) {
    Timestamp t(service.now().ticks + 1);
    Status st = service.AdvanceTo(t, &report);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  for (const std::string name : {"Cre", "Upd", "Rem"}) {
    const DoemDatabase* d = service.History(name);
    if (d != nullptr) out.history_text[name] = WriteDoemText(*d);
  }
  for (const qss::PollError& e : report.errors) {
    out.errors.push_back(e.subject + "@" + std::to_string(e.time.ticks) +
                         ":" + e.status.ToString());
  }
  out.polls_ok = report.polls_ok;
  out.polls_failed = report.polls_failed;
  out.notification_count = report.notifications;
  return out;
}

// The acceptance property: incremental maintenance (with per-poll verify
// cross-checks) and per-poll rebuild produce byte-identical histories,
// notification rows, and report counters — under both strategies, both
// retention modes, and a parallel executor.
TEST(QssIncrementalTest, IncrementalRunMatchesRebuildRun) {
  for (chorel::Strategy strategy :
       {chorel::Strategy::kDirect, chorel::Strategy::kTranslated}) {
    QssConfig incremental;
    incremental.strategy = strategy;
    QssConfig rebuild = incremental;
    rebuild.incremental = false;
    QssRun a = RunQssScenario(incremental);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    QssRun b = RunQssScenario(rebuild);
    EXPECT_TRUE(a.errors.empty()) << "verify cross-check failed: "
                                  << a.errors.front();
    EXPECT_FALSE(a.notifications.empty())
        << "comparison is vacuous: no notifications fired";
    ExpectSameQssRun(a, b);
  }
}

TEST(QssIncrementalTest, IncrementalRunMatchesRebuildUnderTwoSnapshots) {
  QssConfig incremental;
  incremental.retention = qss::HistoryRetention::kTwoSnapshots;
  QssConfig rebuild = incremental;
  rebuild.incremental = false;
  QssRun a = RunQssScenario(incremental);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  QssRun b = RunQssScenario(rebuild);
  EXPECT_TRUE(a.errors.empty());
  ExpectSameQssRun(a, b);
}

TEST(QssIncrementalTest, ParallelIncrementalRunMatchesSerial) {
  QssConfig serial;
  QssRun a = RunQssScenario(serial);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  qss::ThreadPoolExecutor pool(4);
  QssConfig parallel;
  parallel.executor = &pool;
  QssRun b = RunQssScenario(parallel);
  ExpectSameQssRun(a, b);
}

}  // namespace
}  // namespace doem
