#include <gtest/gtest.h>

#include "oem/oem_text.h"
#include "testing/guide.h"

namespace doem {
namespace {

TEST(OemTextTest, WriteGuideMentionsEverything) {
  std::string text = WriteOemText(testing::BuildGuide().db);
  EXPECT_NE(text.find("restaurant"), std::string::npos);
  EXPECT_NE(text.find("\"Bangkok Cuisine\""), std::string::npos);
  EXPECT_NE(text.find("10"), std::string::npos);
  EXPECT_NE(text.find("\"moderate\""), std::string::npos);
  EXPECT_NE(text.find("&7"), std::string::npos);
}

TEST(OemTextTest, RoundTripGuideExactly) {
  OemDatabase db = testing::BuildGuide().db;
  auto parsed = ParseOemText(WriteOemText(db));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->Equals(db));
}

TEST(OemTextTest, ParseHandwritten) {
  auto db = ParseOemText(R"(
    # a comment
    &1 {
      title: &2 "hello",
      count: &3 42,
      ratio: &4 2.5,
      flag: &5 true,
      when: &6 @8Jan1997,
      empty: &7 {}
    }
  )");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->node_count(), 7u);
  EXPECT_EQ(db->GetValue(db->Child(1, "title"))->AsString(), "hello");
  EXPECT_EQ(db->GetValue(db->Child(1, "count"))->AsInt(), 42);
  EXPECT_EQ(db->GetValue(db->Child(1, "ratio"))->AsReal(), 2.5);
  EXPECT_TRUE(db->GetValue(db->Child(1, "flag"))->AsBool());
  EXPECT_EQ(db->GetValue(db->Child(1, "when"))->AsTime(),
            Timestamp::FromDate(1997, 1, 8));
  EXPECT_TRUE(db->GetValue(db->Child(1, "empty"))->is_complex());
}

TEST(OemTextTest, ParseSharingAndCycle) {
  auto db = ParseOemText(R"(
    &1 {
      a: &2 { back: &1, friend: &3 "shared" },
      b: &3,
      c: &2
    }
  )");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->Child(2, "back"), NodeId{1});
  EXPECT_EQ(db->Child(1, "b"), NodeId{3});
  EXPECT_EQ(db->Child(1, "c"), NodeId{2});
  EXPECT_EQ(db->node_count(), 3u);
}

TEST(OemTextTest, QuotedLabels) {
  auto db = ParseOemText(R"(&1 { "&val": &2 5, "weird label": &3 "x" })");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->Child(1, "&val"), NodeId{2});
  EXPECT_EQ(db->Child(1, "weird label"), NodeId{3});
  // Round-trips through quoting.
  auto again = ParseOemText(WriteOemText(*db));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->Equals(*db));
}

TEST(OemTextTest, ErrorsCarryLineNumbers) {
  auto r = ParseOemText("&1 {\n  a: &2 \"unterminated\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(OemTextTest, RejectsUndefinedReference) {
  auto r = ParseOemText("&1 { a: &99 }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("never defined"), std::string::npos);
}

TEST(OemTextTest, RejectsDoubleDefinition) {
  auto r = ParseOemText("&1 { a: &2 5, b: &2 6 }");
  EXPECT_FALSE(r.ok());
}

TEST(OemTextTest, RejectsAtomicRoot) {
  auto r = ParseOemText("&1 42");
  EXPECT_FALSE(r.ok());
}

TEST(OemTextTest, RejectsTrailingInput) {
  auto r = ParseOemText("&1 {} &2 {}");
  EXPECT_FALSE(r.ok());
}

TEST(OemTextTest, EscapesRoundTrip) {
  OemDatabase db;
  NodeId root = db.NewComplex();
  ASSERT_TRUE(db.SetRoot(root).ok());
  ASSERT_TRUE(db.AddArc(root, "s", db.NewString("a\"b\\c\nd\te")).ok());
  auto again = ParseOemText(WriteOemText(db));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(again->Equals(db));
}

}  // namespace
}  // namespace doem
namespace doem {
namespace {

TEST(ValueLiteralTest, ParsesAllKinds) {
  EXPECT_EQ(*ParseValueLiteral("42"), Value::Int(42));
  EXPECT_EQ(*ParseValueLiteral("-7"), Value::Int(-7));
  EXPECT_EQ(*ParseValueLiteral("2.5"), Value::Real(2.5));
  EXPECT_EQ(*ParseValueLiteral("\"x y\""), Value::String("x y"));
  EXPECT_EQ(*ParseValueLiteral("true"), Value::Bool(true));
  EXPECT_EQ(*ParseValueLiteral(" C "), Value::Complex());
  EXPECT_EQ(*ParseValueLiteral("@8Jan1997"),
            Value::Time(Timestamp::FromDate(1997, 1, 8)));
  EXPECT_FALSE(ParseValueLiteral("").ok());
  EXPECT_FALSE(ParseValueLiteral("42 garbage").ok());
  EXPECT_FALSE(ParseValueLiteral("Cx").ok());
}

TEST(ValueLiteralTest, RoundTripsValueToString) {
  for (const Value& v :
       {Value::Int(-3), Value::Real(0.25), Value::String("a\"b"),
        Value::Bool(false), Value::Time(Timestamp::FromDate(1996, 2, 29)),
        Value::Complex()}) {
    auto parsed = ParseValueLiteral(v.ToString());
    ASSERT_TRUE(parsed.ok()) << v.ToString();
    EXPECT_EQ(*parsed, v) << v.ToString();
  }
}

}  // namespace
}  // namespace doem
