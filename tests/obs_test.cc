// Observability layer tests (DESIGN.md §6d): metric instruments and the
// registry (including concurrent updates under the thread-pool executor
// — run in the TSan lane), the clock shim, RAII trace spans and the
// Chrome trace-event export's golden structure, evaluator EvalStats, and
// the end-to-end guarantee that attaching metrics/tracing to QSS
// perturbs nothing: histories, rows, and notifications are
// byte-identical with obs on vs. off.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chorel/chorel.h"
#include "encoding/doem_text.h"
#include "obs/clock.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qss/executor.h"
#include "qss/fault.h"
#include "qss/qss.h"
#include "testing/generators.h"

namespace doem {
namespace {

// ------------------------------------------------- mini JSON parser
//
// Just enough JSON to validate the exporters' output: objects, arrays,
// strings (with \uXXXX left undecoded), numbers, booleans, null. Parse
// errors surface as ok=false, not crashes.

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  bool Has(const std::string& key) const { return object.contains(key); }
  const Json& At(const std::string& key) const { return object.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(Json* out) {
    bool ok = Value(out);
    SkipWs();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(const char* lit) {
    size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool Value(Json* out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return Object(out);
    if (c == '[') return Array(out);
    if (c == '"') {
      out->kind = Json::Kind::kString;
      return String(&out->string);
    }
    if (Literal("true")) {
      out->kind = Json::Kind::kBool;
      out->boolean = true;
      return true;
    }
    if (Literal("false")) {
      out->kind = Json::Kind::kBool;
      return true;
    }
    if (Literal("null")) return true;
    return Number(out);
  }
  bool String(std::string* out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        if (pos_ + 1 >= text_.size()) return false;
        out->push_back(text_[pos_ + 1]);
        pos_ += 2;
      } else {
        out->push_back(text_[pos_]);
        ++pos_;
      }
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Number(Json* out) {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = Json::Kind::kNumber;
    out->number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }
  bool Array(Json* out) {
    out->kind = Json::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Json element;
      if (!Value(&element)) return false;
      out->array.push_back(std::move(element));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool Object(Json* out) {
    out->kind = Json::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || !String(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      Json value;
      if (!Value(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// ------------------------------------------------------- instruments

TEST(MetricsTest, CounterGaugeBasics) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);

  obs::Gauge g;
  g.Set(7);
  g.Add(-3);
  EXPECT_EQ(g.value(), 4);
}

TEST(MetricsTest, HistogramBucketsObservations) {
  obs::Histogram h({10, 100, 1000});
  h.Observe(5);     // <= 10
  h.Observe(10);    // inclusive upper bound
  h.Observe(11);    // <= 100
  h.Observe(1000);  // <= 1000
  h.Observe(5000);  // overflow
  EXPECT_EQ(h.bucket_counts(), (std::vector<uint64_t>{2, 1, 1, 1}));
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 5 + 10 + 11 + 1000 + 5000);
}

TEST(MetricsTest, HistogramSortsAndDedupesBounds) {
  obs::Histogram h({100, 10, 100, 1});
  EXPECT_EQ(h.bounds(), (std::vector<int64_t>{1, 10, 100}));
  EXPECT_EQ(h.bucket_counts().size(), 4u);
}

TEST(MetricsTest, RegistryReturnsStableInstruments) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("x.count", "help");
  obs::Counter* b = registry.GetCounter("x.count");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  a->Increment(3);
  EXPECT_EQ(registry.CounterValue("x.count"), 3u);
  EXPECT_EQ(registry.CounterValue("unknown"), 0u);

  obs::Gauge* g = registry.GetGauge("x.gauge");
  ASSERT_NE(g, nullptr);
  g->Set(-5);
  EXPECT_EQ(registry.GaugeValue("x.gauge"), -5);
}

TEST(MetricsTest, RegistryKindMismatchReturnsNull) {
  obs::MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("name"), nullptr);
  EXPECT_EQ(registry.GetGauge("name"), nullptr);
  EXPECT_EQ(registry.GetHistogram("name", {1, 2}), nullptr);
  // Histogram bounds must also match exactly.
  ASSERT_NE(registry.GetHistogram("h", {1, 2}), nullptr);
  EXPECT_NE(registry.GetHistogram("h", {1, 2}), nullptr);
  EXPECT_EQ(registry.GetHistogram("h", {1, 3}), nullptr);
  // Mismatches disabled the caller but left the originals untouched.
  EXPECT_EQ(registry.CounterValue("name"), 0u);
}

TEST(MetricsTest, PrometheusExposition) {
  obs::MetricsRegistry registry;
  registry.GetCounter("qss.polls_ok", "polls that committed")->Increment(7);
  registry.GetGauge("qss.groups")->Set(3);
  obs::Histogram* h = registry.GetHistogram("lat.ns", {10, 100}, "latency");
  h->Observe(5);
  h->Observe(50);
  h->Observe(500);
  std::string text = registry.ExportPrometheus();
  EXPECT_TRUE(Contains(text, "# HELP qss_polls_ok polls that committed"));
  EXPECT_TRUE(Contains(text, "# TYPE qss_polls_ok counter"));
  EXPECT_TRUE(Contains(text, "qss_polls_ok 7"));
  EXPECT_TRUE(Contains(text, "# TYPE qss_groups gauge"));
  EXPECT_TRUE(Contains(text, "qss_groups 3"));
  // Cumulative le-buckets, closing with +Inf, sum, and count.
  EXPECT_TRUE(Contains(text, "lat_ns_bucket{le=\"10\"} 1"));
  EXPECT_TRUE(Contains(text, "lat_ns_bucket{le=\"100\"} 2"));
  EXPECT_TRUE(Contains(text, "lat_ns_bucket{le=\"+Inf\"} 3"));
  EXPECT_TRUE(Contains(text, "lat_ns_sum 555"));
  EXPECT_TRUE(Contains(text, "lat_ns_count 3"));
}

TEST(MetricsTest, JsonExportParsesAndCarriesValues) {
  obs::MetricsRegistry registry;
  registry.GetCounter("a.count")->Increment(11);
  registry.GetGauge("b.gauge")->Set(-2);
  obs::Histogram* h = registry.GetHistogram("c.hist", {10, 100});
  h->Observe(7);
  h->Observe(70);
  std::string text = registry.ExportJson();
  Json root;
  ASSERT_TRUE(JsonParser(text).Parse(&root)) << text;
  ASSERT_EQ(root.kind, Json::Kind::kObject);
  ASSERT_TRUE(root.Has("counters"));
  ASSERT_TRUE(root.Has("gauges"));
  ASSERT_TRUE(root.Has("histograms"));
  EXPECT_EQ(root.At("counters").At("a.count").number, 11);
  EXPECT_EQ(root.At("gauges").At("b.gauge").number, -2);
  const Json& hist = root.At("histograms").At("c.hist");
  ASSERT_EQ(hist.At("bounds").array.size(), 2u);
  ASSERT_EQ(hist.At("counts").array.size(), 3u);
  EXPECT_EQ(hist.At("counts").array[0].number, 1);
  EXPECT_EQ(hist.At("counts").array[1].number, 1);
  EXPECT_EQ(hist.At("counts").array[2].number, 0);
  EXPECT_EQ(hist.At("sum").number, 77);
  EXPECT_EQ(hist.At("count").number, 2);
}

// Concurrent updates from the thread-pool executor: totals must be
// exact, and the suite runs under TSan in scripts/check.sh.
TEST(MetricsTest, ConcurrentUpdatesAreLossless) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("conc.count");
  obs::Gauge* gauge = registry.GetGauge("conc.gauge");
  obs::Histogram* hist =
      registry.GetHistogram("conc.hist", obs::LatencyBucketsNs());
  qss::ThreadPoolExecutor pool(8);
  constexpr size_t kTasks = 4000;
  pool.ParallelFor(kTasks, [&](size_t i) {
    counter->Increment();
    gauge->Add(1);
    hist->Observe(static_cast<int64_t>(i));
    // Concurrent registration of the same instruments must be safe too.
    registry.GetCounter("conc.count")->Increment();
    registry.GetCounter("conc.late")->Increment();
  });
  EXPECT_EQ(counter->value(), 2 * kTasks);
  EXPECT_EQ(registry.CounterValue("conc.late"), kTasks);
  EXPECT_EQ(registry.GaugeValue("conc.gauge"),
            static_cast<int64_t>(kTasks));
  EXPECT_EQ(hist->count(), kTasks);
}

// ------------------------------------------------------------- clock

TEST(ClockTest, ManualClockOverridesAndRestores) {
  int64_t real_before = obs::NowNs();
  {
    obs::ManualClock clock(1000);
    obs::ScopedClockOverride override_clock(&clock);
    EXPECT_EQ(obs::NowNs(), 1000);
    clock.Advance(250);
    EXPECT_EQ(obs::NowNs(), 1250);
    EXPECT_EQ(obs::ElapsedNs(1000), 250);
    clock.Set(5000);
    EXPECT_EQ(obs::NowNs(), 5000);
  }
  // Back on the real (monotonic) clock.
  EXPECT_GE(obs::NowNs(), real_before);
}

TEST(ClockTest, OverridesNest) {
  obs::ManualClock outer(10);
  obs::ManualClock inner(20);
  obs::ScopedClockOverride o1(&outer);
  {
    obs::ScopedClockOverride o2(&inner);
    EXPECT_EQ(obs::NowNs(), 20);
  }
  EXPECT_EQ(obs::NowNs(), 10);
}

// ------------------------------------------------------------- spans

#ifndef DOEM_TRACING_DISABLED

TEST(TraceTest, SpanRecordsExactDurationsUnderManualClock) {
  obs::ManualClock clock(100);
  obs::ScopedClockOverride override_clock(&clock);
  obs::TraceRecorder recorder;
  {
    obs::TraceSpan outer(&recorder, "outer", "test", Timestamp(7), "label");
    clock.Advance(10);
    {
      obs::TraceSpan inner(&recorder, "inner", "test");
      clock.Advance(5);
    }
    clock.Advance(10);
  }
  std::vector<obs::TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  // Merged in start-time order: outer (100) before inner (110).
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].category, "test");
  EXPECT_EQ(events[0].label, "label");
  EXPECT_EQ(events[0].start_ns, 100);
  EXPECT_EQ(events[0].duration_ns, 25);
  ASSERT_TRUE(events[0].sim.has_value());
  EXPECT_EQ(events[0].sim->ticks, 7);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].start_ns, 110);
  EXPECT_EQ(events[1].duration_ns, 5);
  EXPECT_FALSE(events[1].sim.has_value());
  // Same thread -> same tid; nested inside the outer interval.
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_GE(events[1].start_ns, events[0].start_ns);
  EXPECT_LE(events[1].start_ns + events[1].duration_ns,
            events[0].start_ns + events[0].duration_ns);
}

TEST(TraceTest, BoundedBufferCountsDrops) {
  obs::TraceRecorder recorder(/*max_events_per_thread=*/4);
  for (int i = 0; i < 10; ++i) {
    obs::TraceSpan span(&recorder, "s", "test");
  }
  EXPECT_EQ(recorder.Events().size(), 4u);
  EXPECT_EQ(recorder.dropped(), 6u);
}

TEST(TraceTest, ThreadsGetDistinctTidsAndMergeSorted) {
  obs::TraceRecorder recorder;
  qss::ThreadPoolExecutor pool(4);
  pool.ParallelFor(64, [&](size_t i) {
    obs::TraceSpan span(&recorder, "t" + std::to_string(i), "test");
  });
  std::vector<obs::TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 64u);
  EXPECT_TRUE(std::is_sorted(
      events.begin(), events.end(),
      [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
        return a.start_ns < b.start_ns;
      }));
  std::vector<uint32_t> tids;
  for (const obs::TraceEvent& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  // Dense indexes assigned from 0, at most one per pool thread.
  EXPECT_GE(tids.front(), 0u);
  EXPECT_LE(tids.size(), 4u);
  EXPECT_EQ(tids.back(), tids.size() - 1);
}

// Golden structure of the Chrome trace-event export: valid JSON, a
// process_name metadata event, "X" events with ts/dur microseconds
// relative to the earliest span, and args carrying sim_ticks and label.
TEST(TraceTest, ChromeTraceExportGoldenStructure) {
  obs::ManualClock clock(1'000'000);
  obs::ScopedClockOverride override_clock(&clock);
  obs::TraceRecorder recorder;
  {
    obs::TraceSpan outer(&recorder, "qss.advance", "qss", Timestamp(42));
    clock.Advance(4000);
    {
      obs::TraceSpan inner(&recorder, "qss.fetch", "qss", Timestamp(42),
                           "Names");
      clock.Advance(1500);
    }
    clock.Advance(500);
  }
  std::string text = recorder.ExportChromeTrace();
  Json root;
  ASSERT_TRUE(JsonParser(text).Parse(&root)) << text;
  ASSERT_TRUE(root.Has("traceEvents"));
  const std::vector<Json>& events = root.At("traceEvents").array;
  ASSERT_EQ(events.size(), 3u);  // metadata + 2 spans

  const Json& meta = events[0];
  EXPECT_EQ(meta.At("ph").string, "M");
  EXPECT_EQ(meta.At("name").string, "process_name");

  const Json& advance = events[1];
  EXPECT_EQ(advance.At("ph").string, "X");
  EXPECT_EQ(advance.At("name").string, "qss.advance");
  EXPECT_EQ(advance.At("cat").string, "qss");
  EXPECT_EQ(advance.At("ts").number, 0);      // relative to earliest span
  EXPECT_EQ(advance.At("dur").number, 6);     // 6000 ns = 6 us
  EXPECT_EQ(advance.At("args").At("sim_ticks").number, 42);

  const Json& fetch = events[2];
  EXPECT_EQ(fetch.At("name").string, "qss.fetch");
  EXPECT_EQ(fetch.At("ts").number, 4);        // started 4000 ns in
  EXPECT_EQ(fetch.At("dur").number, 1.5);
  EXPECT_EQ(fetch.At("args").At("label").string, "Names");
  // Nested within the outer event's interval, same tid.
  EXPECT_EQ(fetch.At("tid").number, advance.At("tid").number);
  EXPECT_GE(fetch.At("ts").number, advance.At("ts").number);
  EXPECT_LE(fetch.At("ts").number + fetch.At("dur").number,
            advance.At("ts").number + advance.At("dur").number);
}

#endif  // DOEM_TRACING_DISABLED

TEST(TraceTest, NullRecorderIsFreeAndSafe) {
  obs::TraceSpan a(nullptr, "never", "test");
  obs::TraceSpan b(nullptr, "never", "test", Timestamp(1));
  obs::TraceSpan c(nullptr, "never", "test", Timestamp(1), "label");
}

TEST(TraceTest, EmptyRecorderExportsValidJson) {
  obs::TraceRecorder recorder;
  Json root;
  std::string text = recorder.ExportChromeTrace();
  ASSERT_TRUE(JsonParser(text).Parse(&root)) << text;
  ASSERT_TRUE(root.Has("traceEvents"));
}

// --------------------------------------------------------- EvalStats

TEST(EvalStatsTest, CountsWorkWithoutPerturbingRows) {
  OemDatabase guide = testing::SyntheticGuide(10);
  OemHistory history = testing::SyntheticGuideHistory(guide, 8, 4);
  auto d = DoemDatabase::Build(guide, history);
  ASSERT_TRUE(d.ok());
  std::vector<Timestamp> polls;
  for (const HistoryStep& step : history.steps()) polls.push_back(step.time);
  const std::string query =
      "select guide.restaurant<cre at T> where T > t[-1]";

  auto row_keys = [](const lorel::QueryResult& r) {
    std::vector<std::string> keys;
    for (const auto& row : r.rows) {
      std::string k;
      for (const lorel::RtVal& v : row) k += v.Key() + "|";
      keys.push_back(std::move(k));
    }
    return keys;
  };

  // Plain engine: the annotation step scans (no index attached).
  chorel::ChorelEngine plain(*d);
  lorel::EvalStats scanned_stats;
  lorel::EvalOptions opts;
  opts.polling_times = &polls;
  opts.stats = &scanned_stats;
  auto scanned = plain.Run(query, chorel::Strategy::kDirect, opts);
  ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
  EXPECT_GT(scanned_stats.nodes_visited, 0u);
  EXPECT_GT(scanned_stats.arcs_expanded, 0u);
  EXPECT_EQ(scanned_stats.steps_index_seeded, 0u);
  EXPECT_GT(scanned_stats.steps_scanned, 0u);
  EXPECT_EQ(scanned_stats.postings_scanned, 0u);

  // Seeded engine: the same step is satisfied from index postings.
  chorel::ChorelEngineOptions seeded_opts;
  seeded_opts.seed_from_index = true;
  chorel::ChorelEngine seeded(*d, seeded_opts);
  lorel::EvalStats seeded_stats;
  opts.stats = &seeded_stats;
  auto seeded_result = seeded.Run(query, chorel::Strategy::kDirect, opts);
  ASSERT_TRUE(seeded_result.ok()) << seeded_result.status().ToString();
  EXPECT_GT(seeded_stats.steps_index_seeded, 0u);
  EXPECT_GT(seeded_stats.postings_scanned, 0u);

  // Stats collection is purely observational: identical rows without it.
  opts.stats = nullptr;
  auto bare = plain.Run(query, chorel::Strategy::kDirect, opts);
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(row_keys(*bare), row_keys(*scanned));
  auto sorted = [&](const lorel::QueryResult& r) {
    auto keys = row_keys(r);
    std::sort(keys.begin(), keys.end());
    return keys;
  };
  EXPECT_EQ(sorted(*seeded_result), sorted(*scanned));

  // Stats accumulate across runs (documented: added to, never reset).
  lorel::EvalStats accumulated = scanned_stats;
  opts.stats = &accumulated;
  ASSERT_TRUE(plain.Run(query, chorel::Strategy::kDirect, opts).ok());
  EXPECT_EQ(accumulated.nodes_visited, 2 * scanned_stats.nodes_visited);
}

// ------------------------------------------------ QSS twin-run

// Everything deterministic a QSS run observably produces.
struct RunResult {
  std::map<std::string, std::string> history_text;
  std::map<std::string, std::vector<Timestamp>> polls;
  std::vector<std::string> notifications;
  std::vector<std::string> errors;
  size_t polls_ok = 0;
  size_t polls_missed = 0;
  size_t missed_logged = 0;
  size_t missed_dropped = 0;
  int64_t elapsed_ns = 0;
};

// A faulty two-group workload; with `obs` set, metrics, tracing, and the
// structured event log are attached. max_missed_log=2 with a long outage
// exercises the bounded missed-poll log.
RunResult RunWorkload(bool obs, obs::MetricsRegistry* metrics = nullptr,
                      obs::TraceRecorder* trace = nullptr,
                      obs::EventLog* events = nullptr) {
  OemDatabase base = testing::SyntheticGuide(15);
  OemHistory script = testing::SyntheticGuideHistory(base, 20, 4);
  Timestamp start = Timestamp::FromDate(1997, 1, 1);
  qss::ScriptedSource inner(base, script);
  qss::FaultInjectingSource source(&inner);
  // A long outage on the price group: repeated quarantines, many missed
  // polls.
  source.FailPolls(/*skip=*/2, /*count=*/12, Status::Unavailable("outage"),
                   /*query_contains=*/".price");

  qss::QssOptions opts;
  opts.fault_tolerance.retry.max_attempts = 2;
  opts.fault_tolerance.quarantine_after = 2;
  opts.fault_tolerance.quarantine_cooldown_ticks = 3;
  opts.fault_tolerance.max_missed_log = 2;
  if (obs) {
    opts.observability.metrics = metrics;
    opts.observability.trace = trace;
    opts.observability.events = events;
  }

  qss::QuerySubscriptionService service(&source, start, opts);
  RunResult out;
  auto subscribe = [&](const std::string& name, const std::string& leaf) {
    qss::Subscription sub;
    sub.name = name;
    sub.frequency = *qss::FrequencySpec::Parse("every day");
    sub.polling_query = "select guide.restaurant." + leaf;
    sub.filter_query =
        "select " + name + "." + leaf + "<cre at T> where T > t[-1]";
    Status st = service.Subscribe(sub, [&out, name](
                                           const qss::Notification& n) {
      out.notifications.push_back(name + "@" +
                                  std::to_string(n.poll_time.ticks) + ":" +
                                  std::to_string(n.result.rows.size()));
    });
    EXPECT_TRUE(st.ok()) << st.ToString();
  };
  subscribe("Names", "name");
  subscribe("Prices", "price");

  qss::PollReport report;
  for (int day = 0; day < 20; ++day) {
    Status st = service.AdvanceTo(Timestamp(start.ticks + day), &report);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  for (const std::string name : {"Names", "Prices"}) {
    const DoemDatabase* d = service.History(name);
    EXPECT_NE(d, nullptr) << name;
    if (d != nullptr) out.history_text[name] = WriteDoemText(*d);
    out.polls[name] = service.PollingTimes(name);
  }
  for (const qss::PollError& e : report.errors) {
    out.errors.push_back(e.subject + "@" + std::to_string(e.time.ticks) +
                         ":" + e.status.ToString());
  }
  qss::PollHealth prices = service.Health("Prices");
  out.polls_ok = report.polls_ok;
  out.polls_missed = report.polls_missed;
  out.missed_logged = prices.missed.size();
  out.missed_dropped = prices.missed_dropped;
  out.elapsed_ns = report.elapsed_ns;
  return out;
}

TEST(QssObsTest, ObservabilityDoesNotPerturbTheRun) {
  RunResult bare = RunWorkload(/*obs=*/false);
  obs::MetricsRegistry metrics;
  obs::TraceRecorder trace;
  obs::EventLog events;
  RunResult observed = RunWorkload(/*obs=*/true, &metrics, &trace, &events);

  // Byte-identical histories, polls, notifications, and errors.
  EXPECT_EQ(bare.history_text, observed.history_text);
  EXPECT_EQ(bare.polls, observed.polls);
  EXPECT_EQ(bare.notifications, observed.notifications);
  EXPECT_EQ(bare.errors, observed.errors);
  EXPECT_EQ(bare.polls_ok, observed.polls_ok);
  EXPECT_EQ(bare.polls_missed, observed.polls_missed);
  EXPECT_EQ(bare.missed_logged, observed.missed_logged);
  EXPECT_EQ(bare.missed_dropped, observed.missed_dropped);

  // The metrics agree with the run.
  EXPECT_EQ(metrics.CounterValue("qss.polls_ok"), observed.polls_ok);
  EXPECT_EQ(metrics.CounterValue("qss.polls_missed"), observed.polls_missed);
  EXPECT_EQ(metrics.CounterValue("qss.missed_log_dropped"),
            observed.missed_dropped);
  EXPECT_EQ(metrics.CounterValue("qss.notifications"),
            observed.notifications.size());
  EXPECT_GT(metrics.CounterValue("qss.quarantine_trips"), 0u);
  EXPECT_EQ(metrics.GaugeValue("qss.groups"), 2);
#ifndef DOEM_TRACING_DISABLED
  EXPECT_GT(trace.Events().size(), 0u);
#endif
#ifndef DOEM_EVENTLOG_DISABLED
  // The outage journaled: failures, quarantine transitions, churn.
  EXPECT_GT(events.recorded(), 0u);
  std::string log = events.ExportJsonLines();
  EXPECT_NE(log.find("\"quarantine-opened\""), std::string::npos);
  EXPECT_NE(log.find("\"poll-failed\""), std::string::npos);
  EXPECT_NE(log.find("\"group-created\""), std::string::npos);
#endif
}

TEST(QssObsTest, MissedLogIsBoundedAndElapsedMeasured) {
  RunResult r = RunWorkload(/*obs=*/false);
  // The outage produces more skips than the bound keeps.
  EXPECT_LE(r.missed_logged, 2u);
  EXPECT_GT(r.missed_dropped, 0u);
  EXPECT_GT(r.polls_missed, r.missed_logged);
  EXPECT_EQ(r.polls_missed, r.missed_logged + r.missed_dropped);
  // Whole-call wall time was measured (real clock: strictly positive).
  EXPECT_GT(r.elapsed_ns, 0);
}

}  // namespace
}  // namespace doem
