#include <gtest/gtest.h>

#include "chorel/chorel.h"
#include "chorel/update.h"
#include "testing/guide.h"

namespace doem {
namespace chorel {
namespace {

using doem::testing::BuildGuide;

DoemDatabase FreshGuide() {
  auto d = DoemDatabase::FromSnapshot(BuildGuide().db);
  EXPECT_TRUE(d.ok());
  return std::move(d).value();
}

TEST(UpdateTest, InsertObjectLiteralCompilesToBasicOps) {
  DoemDatabase d = FreshGuide();
  auto ops = CompileUpdate(
      d, "insert guide.restaurant := {name: \"Hakata\", price: 15}");
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  // creNode x3 (restaurant, name, price) + addArc x3 — the Section 2.1
  // decomposition of a higher-level insert.
  size_t cre = 0, add = 0;
  for (const ChangeOp& op : *ops) {
    cre += op.kind == ChangeOp::Kind::kCreNode;
    add += op.kind == ChangeOp::Kind::kAddArc;
  }
  EXPECT_EQ(cre, 3u);
  EXPECT_EQ(add, 3u);
  ASSERT_TRUE(d.ApplyChangeSet(Timestamp(100), *ops).ok());
  auto q = RunChorel(d, "select R from guide.restaurant R, R.name N "
                        "where N = \"Hakata\"",
                     Strategy::kDirect);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->rows.size(), 1u);
}

TEST(UpdateTest, InsertWithConditionTargetsMatchingParents) {
  DoemDatabase d = FreshGuide();
  ASSERT_TRUE(ApplyUpdate(&d, Timestamp(100),
                          "insert guide.restaurant.comment := \"great naan\""
                          " where guide.restaurant.name = \"Janta\"")
                  .ok());
  auto q = RunChorel(d,
                     "select C from guide.restaurant R, R.comment C, "
                     "R.name N where N = \"Janta\"",
                     Strategy::kDirect);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->rows.size(), 1u);
  auto q2 = RunChorel(d,
                      "select C from guide.restaurant R, R.comment C, "
                      "R.name N where N = \"Bangkok Cuisine\"",
                      Strategy::kDirect);
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(q2->rows.empty()) << "only Janta got the comment";
}

TEST(UpdateTest, SetUpdatesMatchingAtoms) {
  DoemDatabase d = FreshGuide();
  ASSERT_TRUE(ApplyUpdate(&d, Timestamp(100),
                          "set guide.restaurant.price := 20 "
                          "where guide.restaurant.name = \"Bangkok Cuisine\"")
                  .ok());
  EXPECT_EQ(d.CurrentValue(1), Value::Int(20));
  // The update left a proper upd annotation.
  auto recs = d.UpdRecords(1);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].old_value, Value::Int(10));
  // Janta's "moderate" price untouched.
  auto q = RunChorel(d, "select P from guide.restaurant.price P "
                        "where P = \"moderate\"",
                     Strategy::kDirect);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->rows.size(), 1u);
}

TEST(UpdateTest, SetWithoutConditionHitsAllMatches) {
  DoemDatabase d = FreshGuide();
  ASSERT_TRUE(
      ApplyUpdate(&d, Timestamp(100), "set guide.restaurant.price := 99")
          .ok());
  auto q = RunChorel(d, "select P from guide.restaurant.price P "
                        "where P = 99",
                     Strategy::kDirect);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->rows.size(), 2u) << "both prices set";
}

TEST(UpdateTest, RemoveDeletesByUnreachability) {
  DoemDatabase d = FreshGuide();
  ASSERT_TRUE(ApplyUpdate(&d, Timestamp(100),
                          "remove guide.restaurant "
                          "where guide.restaurant.name = \"Janta\"")
                  .ok());
  EXPECT_TRUE(d.IsDeleted(6));
  EXPECT_FALSE(d.IsDeleted(7)) << "shared parking survives via Bangkok";
  // The arc is rem-annotated, so change queries can still see it.
  auto q = RunChorel(d, "select guide.<rem at T>restaurant",
                     Strategy::kDirect);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->rows.size(), 1u);
}

TEST(UpdateTest, NoMatchesIsANoOp) {
  DoemDatabase d = FreshGuide();
  auto ops = CompileUpdate(d, "set guide.restaurant.rating := 5");
  ASSERT_TRUE(ops.ok());
  EXPECT_TRUE(ops->empty());
  ASSERT_TRUE(ApplyUpdate(&d, Timestamp(100),
                          "remove guide.cinema")
                  .ok());
}

TEST(UpdateTest, CompileDoesNotMutate) {
  DoemDatabase d = FreshGuide();
  DoemDatabase before = d;
  auto ops = CompileUpdate(
      d, "insert guide.restaurant := {name: \"Hakata\"}");
  ASSERT_TRUE(ops.ok());
  EXPECT_TRUE(d.Equals(before));
}

TEST(UpdateTest, ParseErrors) {
  DoemDatabase d = FreshGuide();
  const char* bad[] = {
      "frobnicate guide.x := 1",
      "insert guide.restaurant",
      "insert guide.restaurant := ",
      "insert guide.restaurant := {name \"x\"}",
      "insert guide.restaurant := {name: }",
      "set guide.restaurant.price := {a: 1}",
      "set guide.# := 1",
      "remove",
      "insert guide.restaurant := 1 garbage",
      "set guide.price := 1 where",
  };
  for (const char* stmt : bad) {
    EXPECT_FALSE(CompileUpdate(d, stmt).ok()) << stmt;
  }
}

TEST(UpdateTest, RootLevelInsertAndRemove) {
  DoemDatabase d = FreshGuide();
  ASSERT_TRUE(ApplyUpdate(&d, Timestamp(100),
                          "insert bulletin := {headline: \"new section\"}")
                  .ok());
  auto q = RunChorel(d, "select bulletin.headline", Strategy::kDirect);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->rows.size(), 1u);
  ASSERT_TRUE(ApplyUpdate(&d, Timestamp(200), "remove bulletin").ok());
  auto q2 = RunChorel(d, "select bulletin.headline", Strategy::kDirect);
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(q2->rows.empty());
}

TEST(UpdateTest, WholeHistoryStaysFeasible) {
  DoemDatabase d = FreshGuide();
  ASSERT_TRUE(ApplyUpdate(&d, Timestamp(100),
                          "insert guide.restaurant := {name: \"Hakata\"}")
                  .ok());
  ASSERT_TRUE(ApplyUpdate(&d, Timestamp(200),
                          "set guide.restaurant.price := 21 "
                          "where guide.restaurant.name = \"Bangkok Cuisine\"")
                  .ok());
  ASSERT_TRUE(ApplyUpdate(&d, Timestamp(300),
                          "remove guide.restaurant "
                          "where guide.restaurant.name = \"Janta\"")
                  .ok());
  EXPECT_TRUE(d.IsFeasible());
  EXPECT_EQ(d.AllTimestamps().size(), 3u);
}

}  // namespace
}  // namespace chorel
}  // namespace doem
