#include <gtest/gtest.h>

#include "doem/doem.h"
#include "oem/graph_compare.h"
#include "testing/guide.h"

namespace doem {
namespace {

using testing::BuildGuide;
using testing::Guide;
using testing::GuideHistory;
using testing::GuideT1;
using testing::GuideT2;
using testing::GuideT3;

DoemDatabase GuideDoem() {
  auto d = DoemDatabase::Build(BuildGuide().db, GuideHistory());
  EXPECT_TRUE(d.ok()) << d.status().ToString();
  return std::move(d).value();
}

// ------------------------------------------------- Figure 4 (Example 3.1)

TEST(DoemTest, Figure4Annotations) {
  DoemDatabase d = GuideDoem();

  // upd annotation on the price node n1, with old value 10.
  const AnnotationList& price = d.NodeAnnotations(1);
  ASSERT_EQ(price.size(), 1u);
  EXPECT_EQ(price[0].kind, Annotation::Kind::kUpd);
  EXPECT_EQ(price[0].time, GuideT1());
  EXPECT_EQ(price[0].old_value, Value::Int(10));
  EXPECT_EQ(d.CurrentValue(1), Value::Int(20));

  // cre annotations on Hakata's nodes.
  ASSERT_TRUE(d.CreTime(2).has_value());
  EXPECT_EQ(*d.CreTime(2), GuideT1());
  EXPECT_EQ(*d.CreTime(3), GuideT1());
  EXPECT_EQ(*d.CreTime(5), GuideT2());

  // add annotations on the new arcs.
  auto restaurant_adds = d.AddAnnotated(4, "restaurant");
  ASSERT_EQ(restaurant_adds.size(), 1u);
  EXPECT_EQ(restaurant_adds[0], std::make_pair(GuideT1(), NodeId{2}));
  ASSERT_EQ(d.AddAnnotated(2, "name").size(), 1u);
  ASSERT_EQ(d.AddAnnotated(2, "comment").size(), 1u);
  EXPECT_EQ(d.AddAnnotated(2, "comment")[0].first, GuideT2());

  // The removed parking arc is NOT removed from the graph; it carries a
  // rem annotation (Example 3.1's key point).
  EXPECT_TRUE(d.graph().HasArc(6, "parking", 7));
  EXPECT_FALSE(d.ArcCurrentlyLive(6, "parking", 7));
  const AnnotationList& rem = d.ArcAnnotations(6, "parking", 7);
  ASSERT_EQ(rem.size(), 1u);
  EXPECT_EQ(rem[0].kind, Annotation::Kind::kRem);
  EXPECT_EQ(rem[0].time, GuideT3());
}

TEST(DoemTest, UnchangedPartsHaveNoAnnotations) {
  DoemDatabase d = GuideDoem();
  Guide g = BuildGuide();
  EXPECT_TRUE(d.NodeAnnotations(g.guide).empty());
  EXPECT_TRUE(d.NodeAnnotations(g.janta).empty());
  EXPECT_TRUE(d.ArcAnnotations(g.guide, "restaurant", g.janta).empty());
}

// --------------------------------------------------- Snapshots (Sec 3.2)

TEST(DoemTest, OriginalSnapshotIsFigure2) {
  DoemDatabase d = GuideDoem();
  OemDatabase original = d.OriginalSnapshot();
  EXPECT_TRUE(original.Equals(BuildGuide().db));
}

TEST(DoemTest, CurrentSnapshotIsFigure3) {
  DoemDatabase d = GuideDoem();
  OemDatabase expected = BuildGuide().db;
  ASSERT_TRUE(GuideHistory().ApplyTo(&expected).ok());
  EXPECT_TRUE(d.CurrentSnapshot().Equals(expected));
}

TEST(DoemTest, SnapshotAtIntermediateTimes) {
  DoemDatabase d = GuideDoem();

  // Just before t1: original state.
  OemDatabase before = d.SnapshotAt(Timestamp(GuideT1().ticks - 1));
  EXPECT_TRUE(before.Equals(BuildGuide().db));

  // At t1 (changes at t are visible at t): price updated, Hakata exists
  // with only a name; the parking arc still present.
  OemDatabase at1 = d.SnapshotAt(GuideT1());
  EXPECT_EQ(at1.GetValue(1)->AsInt(), 20);
  EXPECT_TRUE(at1.HasNode(2));
  EXPECT_TRUE(at1.HasArc(2, "name", 3));
  EXPECT_FALSE(at1.HasNode(5)) << "comment not yet created";
  EXPECT_TRUE(at1.HasArc(6, "parking", 7));
  EXPECT_TRUE(at1.Validate().ok());

  // Between t2 and t3: comment exists; parking arc still present.
  OemDatabase at2 = d.SnapshotAt(Timestamp(GuideT2().ticks + 1));
  EXPECT_TRUE(at2.HasArc(2, "comment", 5));
  EXPECT_TRUE(at2.HasArc(6, "parking", 7));

  // At t3: the parking arc is gone.
  OemDatabase at3 = d.SnapshotAt(GuideT3());
  EXPECT_FALSE(at3.HasArc(6, "parking", 7));
  EXPECT_TRUE(at3.HasNode(7)) << "n7 still reachable via Bangkok";
  EXPECT_TRUE(at3.Validate().ok());
}

TEST(DoemTest, ValueAtFollowsUpdateChain) {
  // Three consecutive updates on one node.
  OemDatabase base;
  NodeId root = base.NewComplex();
  ASSERT_TRUE(base.SetRoot(root).ok());
  NodeId n = base.NewInt(1);
  ASSERT_TRUE(base.AddArc(root, "x", n).ok());

  auto d = DoemDatabase::FromSnapshot(base);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(
      d->ApplyChangeSet(Timestamp(10), {ChangeOp::UpdNode(n, Value::Int(2))})
          .ok());
  ASSERT_TRUE(
      d->ApplyChangeSet(Timestamp(20), {ChangeOp::UpdNode(n, Value::Int(3))})
          .ok());
  ASSERT_TRUE(d->ApplyChangeSet(Timestamp(30),
                                {ChangeOp::UpdNode(n, Value::String("x"))})
                  .ok());

  EXPECT_EQ(d->ValueAt(n, Timestamp(9)), Value::Int(1));
  EXPECT_EQ(d->ValueAt(n, Timestamp(10)), Value::Int(2));
  EXPECT_EQ(d->ValueAt(n, Timestamp(19)), Value::Int(2));
  EXPECT_EQ(d->ValueAt(n, Timestamp(20)), Value::Int(3));
  EXPECT_EQ(d->ValueAt(n, Timestamp(29)), Value::Int(3));
  EXPECT_EQ(d->ValueAt(n, Timestamp(31)), Value::String("x"));

  auto recs = d->UpdRecords(n);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0], (UpdRecord{Timestamp(10), Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(recs[1], (UpdRecord{Timestamp(20), Value::Int(2), Value::Int(3)}));
  EXPECT_EQ(recs[2],
            (UpdRecord{Timestamp(30), Value::Int(3), Value::String("x")}));
}

TEST(DoemTest, ArcReAdditionHistory) {
  // Remove an original arc, then re-add it: annotations [rem, add].
  Guide g = BuildGuide();
  auto d = DoemDatabase::FromSnapshot(g.db);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(d->ApplyChangeSet(Timestamp(100),
                                {ChangeOp::RemArc(6, "parking", 7)})
                  .ok());
  ASSERT_TRUE(d->ApplyChangeSet(Timestamp(200),
                                {ChangeOp::AddArc(6, "parking", 7)})
                  .ok());

  EXPECT_TRUE(d->ArcLiveAt(6, "parking", 7, Timestamp(99)));
  EXPECT_FALSE(d->ArcLiveAt(6, "parking", 7, Timestamp(150)));
  EXPECT_TRUE(d->ArcLiveAt(6, "parking", 7, Timestamp(200)));
  EXPECT_TRUE(d->ArcCurrentlyLive(6, "parking", 7));
  EXPECT_TRUE(d->IsFeasible());
}

// ----------------------------------------------- History extraction (3.2)

TEST(DoemTest, ExtractHistoryRecoversGuideHistory) {
  DoemDatabase d = GuideDoem();
  EXPECT_TRUE(d.ExtractHistory().Equals(GuideHistory()))
      << "extracted:\n"
      << d.ExtractHistory().ToString() << "expected:\n"
      << GuideHistory().ToString();
}

TEST(DoemTest, FeasibilityOfBuiltDatabases) {
  EXPECT_TRUE(GuideDoem().IsFeasible());
  auto d = DoemDatabase::FromSnapshot(BuildGuide().db);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->IsFeasible()) << "empty history is feasible";
}

TEST(DoemTest, UniquenessOfEncodedPair) {
  // Section 3.2's key property: O_0(D) and H(D) are unique, i.e. the DOEM
  // database faithfully captures the original snapshot and history.
  DoemDatabase d = GuideDoem();
  auto rebuilt = DoemDatabase::Build(d.OriginalSnapshot(),
                                     d.ExtractHistory());
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_TRUE(d.Equals(*rebuilt));
  EXPECT_TRUE(rebuilt->ExtractHistory().Equals(d.ExtractHistory()));
  EXPECT_TRUE(rebuilt->OriginalSnapshot().Equals(d.OriginalSnapshot()));
}

TEST(DoemTest, FinalSnapshotEqualsReplayedHistory) {
  DoemDatabase d = GuideDoem();
  OemDatabase replayed = BuildGuide().db;
  ASSERT_TRUE(GuideHistory().ApplyTo(&replayed).ok());
  EXPECT_TRUE(d.SnapshotAt(GuideT3()).Equals(replayed));
}

// --------------------------------------------------------- Deletion rules

TEST(DoemTest, DeletedNodesStayInGraphButRejectOperations) {
  Guide g = BuildGuide();
  auto dr = DoemDatabase::FromSnapshot(g.db);
  ASSERT_TRUE(dr.ok());
  DoemDatabase d = std::move(dr).value();

  // Deleting Janta by removing its only incoming arc.
  ASSERT_TRUE(d.ApplyChangeSet(Timestamp(100),
                               {ChangeOp::RemArc(4, "restaurant", 6)})
                  .ok());
  EXPECT_TRUE(d.IsDeleted(6));
  EXPECT_TRUE(d.graph().HasNode(6)) << "physically retained";
  EXPECT_FALSE(d.SnapshotAt(Timestamp(100)).HasNode(6));
  EXPECT_TRUE(d.SnapshotAt(Timestamp(99)).HasNode(6));

  // The shared parking object survives via Bangkok.
  EXPECT_FALSE(d.IsDeleted(7));

  // Operating on the deleted object is invalid (Section 2.2).
  EXPECT_FALSE(d.ApplyChangeSet(Timestamp(200),
                                {ChangeOp::UpdNode(6, Value::Int(1))})
                   .ok());
  EXPECT_FALSE(d.ApplyChangeSet(Timestamp(200),
                                {ChangeOp::AddArc(4, "restaurant", 6)})
                   .ok());
  EXPECT_TRUE(d.IsFeasible());
}

TEST(DoemTest, TemporarilyUnreachableWithinChangeSetIsFine) {
  DoemDatabase d = GuideDoem();
  // Create a node and link it in the same set; also re-parent a subtree.
  Status s = d.ApplyChangeSet(
      Timestamp::FromDate(1997, 2, 1),
      {ChangeOp::CreNode(50, Value::Complex()),
       ChangeOp::CreNode(51, Value::String("Thai")),
       ChangeOp::AddArc(4, "restaurant", 50),
       ChangeOp::AddArc(50, "cuisine", 51)});
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_FALSE(d.IsDeleted(50));
  EXPECT_EQ(*d.CreTime(50), Timestamp::FromDate(1997, 2, 1));
}

TEST(DoemTest, StillbornCreatedNodeIsPruned) {
  // A node created and never linked is unreachable at the set boundary;
  // it never existed in any snapshot and is pruned physically, together
  // with any arcs added under it in the same set.
  DoemDatabase d = GuideDoem();
  ASSERT_TRUE(d.ApplyChangeSet(Timestamp::FromDate(1997, 2, 1),
                               {ChangeOp::CreNode(50, Value::Complex()),
                                ChangeOp::CreNode(51, Value::Int(1)),
                                ChangeOp::AddArc(50, "x", 51)})
                  .ok());
  EXPECT_FALSE(d.graph().HasNode(50));
  EXPECT_FALSE(d.graph().HasNode(51));
  EXPECT_TRUE(d.IsFeasible());
  // The ids stay burned: re-creating them later is still an error.
  EXPECT_FALSE(d.ApplyChangeSet(Timestamp::FromDate(1997, 3, 1),
                                {ChangeOp::CreNode(50, Value::Int(2)),
                                 ChangeOp::AddArc(4, "x", 50)})
                   .ok());
}

// ---------------------------------------------------------- Error paths

TEST(DoemTest, RejectsNonIncreasingTimestamps) {
  DoemDatabase d = GuideDoem();
  EXPECT_FALSE(d.ApplyChangeSet(GuideT3(), {}).ok());
  EXPECT_FALSE(d.ApplyChangeSet(GuideT1(), {}).ok());
  EXPECT_TRUE(d.ApplyChangeSet(Timestamp(GuideT3().ticks + 1), {}).ok());
}

TEST(DoemTest, RejectsDoubleAddOfLiveArc) {
  DoemDatabase d = GuideDoem();
  EXPECT_FALSE(d.ApplyChangeSet(Timestamp::FromDate(1997, 2, 1),
                                {ChangeOp::AddArc(4, "restaurant", 6)})
                   .ok());
}

TEST(DoemTest, RejectsRemovalOfDeadArc) {
  DoemDatabase d = GuideDoem();
  // (6, parking, 7) was already removed at t3.
  EXPECT_FALSE(d.ApplyChangeSet(Timestamp::FromDate(1997, 2, 1),
                                {ChangeOp::RemArc(6, "parking", 7)})
                   .ok());
}

TEST(DoemTest, RejectsUpdOfNodeWithLiveChildren) {
  DoemDatabase d = GuideDoem();
  EXPECT_FALSE(d.ApplyChangeSet(Timestamp::FromDate(1997, 2, 1),
                                {ChangeOp::UpdNode(6, Value::Int(1))})
                   .ok());
}

TEST(DoemTest, UpdAllowedOnceLiveChildrenRemoved) {
  // Node 7's arcs are removed over time; once none is live, updNode works
  // even though removed arcs are physically present.
  DoemDatabase d = GuideDoem();
  Guide g = BuildGuide();
  Timestamp t(GuideT3().ticks + 1);
  ChangeSet rems;
  for (const OutArc& a : d.LiveArcs(7)) {
    rems.push_back(ChangeOp::RemArc(7, a.label, a.child));
  }
  rems.push_back(ChangeOp::UpdNode(7, Value::String("just a string now")));
  ASSERT_TRUE(d.ApplyChangeSet(t, rems).ok());
  EXPECT_EQ(d.CurrentValue(7), Value::String("just a string now"));
  EXPECT_FALSE(d.graph().OutArcs(7).empty())
      << "removed arcs stay in the DOEM graph";
  EXPECT_TRUE(d.IsFeasible());
  // Time travel still sees the old complex object.
  OemDatabase old = d.SnapshotAt(GuideT3());
  EXPECT_TRUE(old.GetValue(7)->is_complex());
  EXPECT_FALSE(old.Children(7, "lot").empty());
}

TEST(DoemTest, TransactionalOnFailure) {
  DoemDatabase d = GuideDoem();
  DoemDatabase before = d;
  Status s = d.ApplyChangeSet(
      Timestamp::FromDate(1997, 2, 1),
      {ChangeOp::CreNode(60, Value::Int(1)),
       ChangeOp::AddArc(4, "x", 60),
       ChangeOp::AddArc(999, "y", 60)});  // bad parent
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(d.Equals(before));
}

TEST(DoemTest, FromSnapshotRequiresWellFormedBase) {
  OemDatabase no_root;
  no_root.NewComplex();
  EXPECT_FALSE(DoemDatabase::FromSnapshot(no_root).ok());
}

TEST(DoemTest, EqualsDistinguishesAnnotations) {
  DoemDatabase a = GuideDoem();
  // Same final graph, different history: build Figure 3 directly with a
  // one-step history.
  OemHistory squashed;
  ChangeSet all;
  OemHistory original = GuideHistory();
  for (const HistoryStep& step : original.steps()) {
    for (const ChangeOp& op : step.changes) all.push_back(op);
  }
  ASSERT_TRUE(squashed.Append(GuideT1(), all).ok());
  auto b = DoemDatabase::Build(BuildGuide().db, squashed);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(a.CurrentSnapshot().Equals(b->CurrentSnapshot()));
  EXPECT_FALSE(a.Equals(*b));
}

}  // namespace
}  // namespace doem
