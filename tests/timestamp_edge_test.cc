// Calendar-edge tests for the timestamp domain: leap years, month
// boundaries, century rules, and ordering across them.

#include <gtest/gtest.h>

#include "oem/timestamp.h"

namespace doem {
namespace {

TEST(TimestampEdgeTest, LeapYears) {
  // 1996 is a leap year; Feb 29 exists and sits between Feb 28 and Mar 1.
  Timestamp feb28 = Timestamp::FromDate(1996, 2, 28);
  Timestamp feb29 = Timestamp::FromDate(1996, 2, 29);
  Timestamp mar01 = Timestamp::FromDate(1996, 3, 1);
  EXPECT_EQ(feb29.ticks, feb28.ticks + 1);
  EXPECT_EQ(mar01.ticks, feb29.ticks + 1);
  EXPECT_EQ(feb29.ToString(), "29Feb1996");

  // 1900 is NOT a leap year (century rule); 2000 IS (400 rule).
  EXPECT_EQ(Timestamp::FromDate(1900, 3, 1).ticks,
            Timestamp::FromDate(1900, 2, 28).ticks + 1);
  EXPECT_EQ(Timestamp::FromDate(2000, 3, 1).ticks,
            Timestamp::FromDate(2000, 2, 29).ticks + 1);
}

TEST(TimestampEdgeTest, EpochAnchors) {
  EXPECT_EQ(Timestamp::FromDate(1970, 1, 1).ticks, 0);
  EXPECT_EQ(Timestamp::FromDate(1970, 1, 2).ticks, 1);
  EXPECT_EQ(Timestamp::FromDate(1969, 12, 31).ticks, -1);
}

TEST(TimestampEdgeTest, YearBoundaryOrdering) {
  // The Example 6.1 polling times straddle a year boundary.
  Timestamp dec30 = Timestamp::FromDate(1996, 12, 30);
  Timestamp dec31 = Timestamp::FromDate(1996, 12, 31);
  Timestamp jan01 = Timestamp::FromDate(1997, 1, 1);
  EXPECT_LT(dec30, dec31);
  EXPECT_LT(dec31, jan01);
  EXPECT_EQ(jan01.ticks, dec31.ticks + 1);
}

TEST(TimestampEdgeTest, RoundTripAcrossYears) {
  for (int year : {1900, 1970, 1996, 1997, 2000, 2026, 2100}) {
    for (int month : {1, 2, 6, 12}) {
      Timestamp t = Timestamp::FromDate(year, month, 28);
      Timestamp parsed;
      ASSERT_TRUE(Timestamp::Parse(t.ToString(), &parsed)) << t.ToString();
      EXPECT_EQ(parsed, t) << t.ToString();
    }
  }
}

TEST(TimestampEdgeTest, TwoDigitYearsAre1900s) {
  // The paper's "1Jan97" means 1997; "1Jan03" therefore means 1903 under
  // the same rule — documented, deterministic behavior.
  Timestamp t;
  ASSERT_TRUE(Timestamp::Parse("1Jan03", &t));
  EXPECT_EQ(t, Timestamp::FromDate(1903, 1, 1));
}

}  // namespace
}  // namespace doem
