file(REMOVE_RECURSE
  "libdoem_testing.a"
)
