# Empty dependencies file for doem_testing.
# This may be replaced when dependencies are built.
