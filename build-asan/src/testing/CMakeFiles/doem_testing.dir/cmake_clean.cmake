file(REMOVE_RECURSE
  "CMakeFiles/doem_testing.dir/generators.cc.o"
  "CMakeFiles/doem_testing.dir/generators.cc.o.d"
  "CMakeFiles/doem_testing.dir/guide.cc.o"
  "CMakeFiles/doem_testing.dir/guide.cc.o.d"
  "libdoem_testing.a"
  "libdoem_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doem_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
