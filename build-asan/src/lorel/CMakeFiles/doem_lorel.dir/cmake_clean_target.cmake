file(REMOVE_RECURSE
  "libdoem_lorel.a"
)
