file(REMOVE_RECURSE
  "CMakeFiles/doem_lorel.dir/ast.cc.o"
  "CMakeFiles/doem_lorel.dir/ast.cc.o.d"
  "CMakeFiles/doem_lorel.dir/coerce.cc.o"
  "CMakeFiles/doem_lorel.dir/coerce.cc.o.d"
  "CMakeFiles/doem_lorel.dir/eval.cc.o"
  "CMakeFiles/doem_lorel.dir/eval.cc.o.d"
  "CMakeFiles/doem_lorel.dir/lexer.cc.o"
  "CMakeFiles/doem_lorel.dir/lexer.cc.o.d"
  "CMakeFiles/doem_lorel.dir/lorel.cc.o"
  "CMakeFiles/doem_lorel.dir/lorel.cc.o.d"
  "CMakeFiles/doem_lorel.dir/normalize.cc.o"
  "CMakeFiles/doem_lorel.dir/normalize.cc.o.d"
  "CMakeFiles/doem_lorel.dir/parser.cc.o"
  "CMakeFiles/doem_lorel.dir/parser.cc.o.d"
  "CMakeFiles/doem_lorel.dir/view.cc.o"
  "CMakeFiles/doem_lorel.dir/view.cc.o.d"
  "libdoem_lorel.a"
  "libdoem_lorel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doem_lorel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
