# Empty dependencies file for doem_lorel.
# This may be replaced when dependencies are built.
