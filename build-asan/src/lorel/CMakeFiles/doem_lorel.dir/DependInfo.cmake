
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lorel/ast.cc" "src/lorel/CMakeFiles/doem_lorel.dir/ast.cc.o" "gcc" "src/lorel/CMakeFiles/doem_lorel.dir/ast.cc.o.d"
  "/root/repo/src/lorel/coerce.cc" "src/lorel/CMakeFiles/doem_lorel.dir/coerce.cc.o" "gcc" "src/lorel/CMakeFiles/doem_lorel.dir/coerce.cc.o.d"
  "/root/repo/src/lorel/eval.cc" "src/lorel/CMakeFiles/doem_lorel.dir/eval.cc.o" "gcc" "src/lorel/CMakeFiles/doem_lorel.dir/eval.cc.o.d"
  "/root/repo/src/lorel/lexer.cc" "src/lorel/CMakeFiles/doem_lorel.dir/lexer.cc.o" "gcc" "src/lorel/CMakeFiles/doem_lorel.dir/lexer.cc.o.d"
  "/root/repo/src/lorel/lorel.cc" "src/lorel/CMakeFiles/doem_lorel.dir/lorel.cc.o" "gcc" "src/lorel/CMakeFiles/doem_lorel.dir/lorel.cc.o.d"
  "/root/repo/src/lorel/normalize.cc" "src/lorel/CMakeFiles/doem_lorel.dir/normalize.cc.o" "gcc" "src/lorel/CMakeFiles/doem_lorel.dir/normalize.cc.o.d"
  "/root/repo/src/lorel/parser.cc" "src/lorel/CMakeFiles/doem_lorel.dir/parser.cc.o" "gcc" "src/lorel/CMakeFiles/doem_lorel.dir/parser.cc.o.d"
  "/root/repo/src/lorel/view.cc" "src/lorel/CMakeFiles/doem_lorel.dir/view.cc.o" "gcc" "src/lorel/CMakeFiles/doem_lorel.dir/view.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/oem/CMakeFiles/doem_oem.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/doem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
