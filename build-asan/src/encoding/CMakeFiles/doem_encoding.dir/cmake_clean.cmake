file(REMOVE_RECURSE
  "CMakeFiles/doem_encoding.dir/doem_text.cc.o"
  "CMakeFiles/doem_encoding.dir/doem_text.cc.o.d"
  "CMakeFiles/doem_encoding.dir/encode.cc.o"
  "CMakeFiles/doem_encoding.dir/encode.cc.o.d"
  "libdoem_encoding.a"
  "libdoem_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doem_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
