file(REMOVE_RECURSE
  "libdoem_encoding.a"
)
