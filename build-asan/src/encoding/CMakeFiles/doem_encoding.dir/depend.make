# Empty dependencies file for doem_encoding.
# This may be replaced when dependencies are built.
