
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/htmldiff/html.cc" "src/htmldiff/CMakeFiles/doem_htmldiff.dir/html.cc.o" "gcc" "src/htmldiff/CMakeFiles/doem_htmldiff.dir/html.cc.o.d"
  "/root/repo/src/htmldiff/htmldiff.cc" "src/htmldiff/CMakeFiles/doem_htmldiff.dir/htmldiff.cc.o" "gcc" "src/htmldiff/CMakeFiles/doem_htmldiff.dir/htmldiff.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/doem/CMakeFiles/doem_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/diff/CMakeFiles/doem_diff.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/oem/CMakeFiles/doem_oem.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/doem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
