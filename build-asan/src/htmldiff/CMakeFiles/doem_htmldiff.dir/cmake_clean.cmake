file(REMOVE_RECURSE
  "CMakeFiles/doem_htmldiff.dir/html.cc.o"
  "CMakeFiles/doem_htmldiff.dir/html.cc.o.d"
  "CMakeFiles/doem_htmldiff.dir/htmldiff.cc.o"
  "CMakeFiles/doem_htmldiff.dir/htmldiff.cc.o.d"
  "libdoem_htmldiff.a"
  "libdoem_htmldiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doem_htmldiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
