# Empty dependencies file for doem_htmldiff.
# This may be replaced when dependencies are built.
