file(REMOVE_RECURSE
  "libdoem_htmldiff.a"
)
