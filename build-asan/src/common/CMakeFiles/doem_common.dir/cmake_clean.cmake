file(REMOVE_RECURSE
  "CMakeFiles/doem_common.dir/status.cc.o"
  "CMakeFiles/doem_common.dir/status.cc.o.d"
  "CMakeFiles/doem_common.dir/strings.cc.o"
  "CMakeFiles/doem_common.dir/strings.cc.o.d"
  "libdoem_common.a"
  "libdoem_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doem_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
