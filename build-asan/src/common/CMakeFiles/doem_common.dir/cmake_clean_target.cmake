file(REMOVE_RECURSE
  "libdoem_common.a"
)
