# Empty dependencies file for doem_common.
# This may be replaced when dependencies are built.
