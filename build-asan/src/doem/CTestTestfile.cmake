# CMake generated Testfile for 
# Source directory: /root/repo/src/doem
# Build directory: /root/repo/build-asan/src/doem
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
