# Empty dependencies file for doem_core.
# This may be replaced when dependencies are built.
