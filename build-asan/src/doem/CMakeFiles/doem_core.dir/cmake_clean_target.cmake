file(REMOVE_RECURSE
  "libdoem_core.a"
)
