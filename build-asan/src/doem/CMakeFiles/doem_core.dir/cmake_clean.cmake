file(REMOVE_RECURSE
  "CMakeFiles/doem_core.dir/annotation.cc.o"
  "CMakeFiles/doem_core.dir/annotation.cc.o.d"
  "CMakeFiles/doem_core.dir/annotation_index.cc.o"
  "CMakeFiles/doem_core.dir/annotation_index.cc.o.d"
  "CMakeFiles/doem_core.dir/doem.cc.o"
  "CMakeFiles/doem_core.dir/doem.cc.o.d"
  "libdoem_core.a"
  "libdoem_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doem_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
