
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/doem/annotation.cc" "src/doem/CMakeFiles/doem_core.dir/annotation.cc.o" "gcc" "src/doem/CMakeFiles/doem_core.dir/annotation.cc.o.d"
  "/root/repo/src/doem/annotation_index.cc" "src/doem/CMakeFiles/doem_core.dir/annotation_index.cc.o" "gcc" "src/doem/CMakeFiles/doem_core.dir/annotation_index.cc.o.d"
  "/root/repo/src/doem/doem.cc" "src/doem/CMakeFiles/doem_core.dir/doem.cc.o" "gcc" "src/doem/CMakeFiles/doem_core.dir/doem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/oem/CMakeFiles/doem_oem.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/doem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
