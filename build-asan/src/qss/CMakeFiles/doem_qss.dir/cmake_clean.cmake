file(REMOVE_RECURSE
  "CMakeFiles/doem_qss.dir/fault.cc.o"
  "CMakeFiles/doem_qss.dir/fault.cc.o.d"
  "CMakeFiles/doem_qss.dir/frequency.cc.o"
  "CMakeFiles/doem_qss.dir/frequency.cc.o.d"
  "CMakeFiles/doem_qss.dir/qss.cc.o"
  "CMakeFiles/doem_qss.dir/qss.cc.o.d"
  "CMakeFiles/doem_qss.dir/source.cc.o"
  "CMakeFiles/doem_qss.dir/source.cc.o.d"
  "libdoem_qss.a"
  "libdoem_qss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doem_qss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
