file(REMOVE_RECURSE
  "libdoem_qss.a"
)
