# Empty dependencies file for doem_qss.
# This may be replaced when dependencies are built.
