
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qss/fault.cc" "src/qss/CMakeFiles/doem_qss.dir/fault.cc.o" "gcc" "src/qss/CMakeFiles/doem_qss.dir/fault.cc.o.d"
  "/root/repo/src/qss/frequency.cc" "src/qss/CMakeFiles/doem_qss.dir/frequency.cc.o" "gcc" "src/qss/CMakeFiles/doem_qss.dir/frequency.cc.o.d"
  "/root/repo/src/qss/qss.cc" "src/qss/CMakeFiles/doem_qss.dir/qss.cc.o" "gcc" "src/qss/CMakeFiles/doem_qss.dir/qss.cc.o.d"
  "/root/repo/src/qss/source.cc" "src/qss/CMakeFiles/doem_qss.dir/source.cc.o" "gcc" "src/qss/CMakeFiles/doem_qss.dir/source.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/chorel/CMakeFiles/doem_chorel.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/diff/CMakeFiles/doem_diff.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/lorel/CMakeFiles/doem_lorel.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/encoding/CMakeFiles/doem_encoding.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/doem/CMakeFiles/doem_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/oem/CMakeFiles/doem_oem.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/doem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
