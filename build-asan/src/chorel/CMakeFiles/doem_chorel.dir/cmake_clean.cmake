file(REMOVE_RECURSE
  "CMakeFiles/doem_chorel.dir/chorel.cc.o"
  "CMakeFiles/doem_chorel.dir/chorel.cc.o.d"
  "CMakeFiles/doem_chorel.dir/translate.cc.o"
  "CMakeFiles/doem_chorel.dir/translate.cc.o.d"
  "CMakeFiles/doem_chorel.dir/triggers.cc.o"
  "CMakeFiles/doem_chorel.dir/triggers.cc.o.d"
  "CMakeFiles/doem_chorel.dir/update.cc.o"
  "CMakeFiles/doem_chorel.dir/update.cc.o.d"
  "libdoem_chorel.a"
  "libdoem_chorel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doem_chorel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
