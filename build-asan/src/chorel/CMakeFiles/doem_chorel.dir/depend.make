# Empty dependencies file for doem_chorel.
# This may be replaced when dependencies are built.
