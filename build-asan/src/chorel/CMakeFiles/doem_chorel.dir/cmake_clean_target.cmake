file(REMOVE_RECURSE
  "libdoem_chorel.a"
)
