file(REMOVE_RECURSE
  "libdoem_oem.a"
)
