
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oem/change.cc" "src/oem/CMakeFiles/doem_oem.dir/change.cc.o" "gcc" "src/oem/CMakeFiles/doem_oem.dir/change.cc.o.d"
  "/root/repo/src/oem/graph_compare.cc" "src/oem/CMakeFiles/doem_oem.dir/graph_compare.cc.o" "gcc" "src/oem/CMakeFiles/doem_oem.dir/graph_compare.cc.o.d"
  "/root/repo/src/oem/history.cc" "src/oem/CMakeFiles/doem_oem.dir/history.cc.o" "gcc" "src/oem/CMakeFiles/doem_oem.dir/history.cc.o.d"
  "/root/repo/src/oem/history_text.cc" "src/oem/CMakeFiles/doem_oem.dir/history_text.cc.o" "gcc" "src/oem/CMakeFiles/doem_oem.dir/history_text.cc.o.d"
  "/root/repo/src/oem/oem.cc" "src/oem/CMakeFiles/doem_oem.dir/oem.cc.o" "gcc" "src/oem/CMakeFiles/doem_oem.dir/oem.cc.o.d"
  "/root/repo/src/oem/oem_text.cc" "src/oem/CMakeFiles/doem_oem.dir/oem_text.cc.o" "gcc" "src/oem/CMakeFiles/doem_oem.dir/oem_text.cc.o.d"
  "/root/repo/src/oem/subgraph.cc" "src/oem/CMakeFiles/doem_oem.dir/subgraph.cc.o" "gcc" "src/oem/CMakeFiles/doem_oem.dir/subgraph.cc.o.d"
  "/root/repo/src/oem/timestamp.cc" "src/oem/CMakeFiles/doem_oem.dir/timestamp.cc.o" "gcc" "src/oem/CMakeFiles/doem_oem.dir/timestamp.cc.o.d"
  "/root/repo/src/oem/value.cc" "src/oem/CMakeFiles/doem_oem.dir/value.cc.o" "gcc" "src/oem/CMakeFiles/doem_oem.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/doem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
