# Empty dependencies file for doem_oem.
# This may be replaced when dependencies are built.
