file(REMOVE_RECURSE
  "CMakeFiles/doem_oem.dir/change.cc.o"
  "CMakeFiles/doem_oem.dir/change.cc.o.d"
  "CMakeFiles/doem_oem.dir/graph_compare.cc.o"
  "CMakeFiles/doem_oem.dir/graph_compare.cc.o.d"
  "CMakeFiles/doem_oem.dir/history.cc.o"
  "CMakeFiles/doem_oem.dir/history.cc.o.d"
  "CMakeFiles/doem_oem.dir/history_text.cc.o"
  "CMakeFiles/doem_oem.dir/history_text.cc.o.d"
  "CMakeFiles/doem_oem.dir/oem.cc.o"
  "CMakeFiles/doem_oem.dir/oem.cc.o.d"
  "CMakeFiles/doem_oem.dir/oem_text.cc.o"
  "CMakeFiles/doem_oem.dir/oem_text.cc.o.d"
  "CMakeFiles/doem_oem.dir/subgraph.cc.o"
  "CMakeFiles/doem_oem.dir/subgraph.cc.o.d"
  "CMakeFiles/doem_oem.dir/timestamp.cc.o"
  "CMakeFiles/doem_oem.dir/timestamp.cc.o.d"
  "CMakeFiles/doem_oem.dir/value.cc.o"
  "CMakeFiles/doem_oem.dir/value.cc.o.d"
  "libdoem_oem.a"
  "libdoem_oem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doem_oem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
