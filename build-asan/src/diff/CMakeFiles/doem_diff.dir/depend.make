# Empty dependencies file for doem_diff.
# This may be replaced when dependencies are built.
