file(REMOVE_RECURSE
  "CMakeFiles/doem_diff.dir/diff.cc.o"
  "CMakeFiles/doem_diff.dir/diff.cc.o.d"
  "libdoem_diff.a"
  "libdoem_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doem_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
