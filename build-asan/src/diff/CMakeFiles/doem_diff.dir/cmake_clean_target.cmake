file(REMOVE_RECURSE
  "libdoem_diff.a"
)
