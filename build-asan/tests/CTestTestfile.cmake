# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/oem_test[1]_include.cmake")
include("/root/repo/build-asan/tests/oem_text_test[1]_include.cmake")
include("/root/repo/build-asan/tests/doem_test[1]_include.cmake")
include("/root/repo/build-asan/tests/encoding_test[1]_include.cmake")
include("/root/repo/build-asan/tests/lorel_test[1]_include.cmake")
include("/root/repo/build-asan/tests/chorel_test[1]_include.cmake")
include("/root/repo/build-asan/tests/diff_test[1]_include.cmake")
include("/root/repo/build-asan/tests/qss_test[1]_include.cmake")
include("/root/repo/build-asan/tests/htmldiff_test[1]_include.cmake")
include("/root/repo/build-asan/tests/property_test[1]_include.cmake")
include("/root/repo/build-asan/tests/annotation_index_test[1]_include.cmake")
include("/root/repo/build-asan/tests/robustness_test[1]_include.cmake")
include("/root/repo/build-asan/tests/triggers_test[1]_include.cmake")
include("/root/repo/build-asan/tests/common_test[1]_include.cmake")
include("/root/repo/build-asan/tests/update_test[1]_include.cmake")
include("/root/repo/build-asan/tests/graph_compare_test[1]_include.cmake")
include("/root/repo/build-asan/tests/timestamp_edge_test[1]_include.cmake")
include("/root/repo/build-asan/tests/history_text_test[1]_include.cmake")
add_test(example_quickstart "/root/repo/build-asan/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_restaurant_guide "/root/repo/build-asan/examples/restaurant_guide")
set_tests_properties(example_restaurant_guide PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;25;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_library_qss "/root/repo/build-asan/examples/library_qss")
set_tests_properties(example_library_qss PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_htmldiff_demo "/root/repo/build-asan/examples/htmldiff_demo")
set_tests_properties(example_htmldiff_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;27;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_doem_shell "/root/repo/build-asan/examples/doem_shell" "/root/repo/examples/data/shell_demo.txt")
set_tests_properties(example_doem_shell PROPERTIES  WORKING_DIRECTORY "/root/repo" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;29;add_test;/root/repo/tests/CMakeLists.txt;0;")
