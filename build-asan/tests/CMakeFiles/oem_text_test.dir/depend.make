# Empty dependencies file for oem_text_test.
# This may be replaced when dependencies are built.
