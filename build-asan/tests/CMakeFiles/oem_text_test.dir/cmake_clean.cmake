file(REMOVE_RECURSE
  "CMakeFiles/oem_text_test.dir/oem_text_test.cc.o"
  "CMakeFiles/oem_text_test.dir/oem_text_test.cc.o.d"
  "oem_text_test"
  "oem_text_test.pdb"
  "oem_text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oem_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
