# Empty dependencies file for doem_test.
# This may be replaced when dependencies are built.
