file(REMOVE_RECURSE
  "CMakeFiles/doem_test.dir/doem_test.cc.o"
  "CMakeFiles/doem_test.dir/doem_test.cc.o.d"
  "doem_test"
  "doem_test.pdb"
  "doem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
