# Empty compiler generated dependencies file for annotation_index_test.
# This may be replaced when dependencies are built.
