file(REMOVE_RECURSE
  "CMakeFiles/annotation_index_test.dir/annotation_index_test.cc.o"
  "CMakeFiles/annotation_index_test.dir/annotation_index_test.cc.o.d"
  "annotation_index_test"
  "annotation_index_test.pdb"
  "annotation_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotation_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
