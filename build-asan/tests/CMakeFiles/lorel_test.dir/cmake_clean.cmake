file(REMOVE_RECURSE
  "CMakeFiles/lorel_test.dir/lorel_test.cc.o"
  "CMakeFiles/lorel_test.dir/lorel_test.cc.o.d"
  "lorel_test"
  "lorel_test.pdb"
  "lorel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lorel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
