# Empty dependencies file for lorel_test.
# This may be replaced when dependencies are built.
