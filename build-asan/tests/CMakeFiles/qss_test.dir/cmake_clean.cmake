file(REMOVE_RECURSE
  "CMakeFiles/qss_test.dir/qss_test.cc.o"
  "CMakeFiles/qss_test.dir/qss_test.cc.o.d"
  "qss_test"
  "qss_test.pdb"
  "qss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
