# Empty dependencies file for qss_test.
# This may be replaced when dependencies are built.
