file(REMOVE_RECURSE
  "CMakeFiles/oem_test.dir/oem_test.cc.o"
  "CMakeFiles/oem_test.dir/oem_test.cc.o.d"
  "oem_test"
  "oem_test.pdb"
  "oem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
