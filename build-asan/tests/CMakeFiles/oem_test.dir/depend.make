# Empty dependencies file for oem_test.
# This may be replaced when dependencies are built.
