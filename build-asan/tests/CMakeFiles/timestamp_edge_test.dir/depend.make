# Empty dependencies file for timestamp_edge_test.
# This may be replaced when dependencies are built.
