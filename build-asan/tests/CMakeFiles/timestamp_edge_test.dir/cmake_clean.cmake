file(REMOVE_RECURSE
  "CMakeFiles/timestamp_edge_test.dir/timestamp_edge_test.cc.o"
  "CMakeFiles/timestamp_edge_test.dir/timestamp_edge_test.cc.o.d"
  "timestamp_edge_test"
  "timestamp_edge_test.pdb"
  "timestamp_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timestamp_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
