# Empty compiler generated dependencies file for htmldiff_test.
# This may be replaced when dependencies are built.
