file(REMOVE_RECURSE
  "CMakeFiles/htmldiff_test.dir/htmldiff_test.cc.o"
  "CMakeFiles/htmldiff_test.dir/htmldiff_test.cc.o.d"
  "htmldiff_test"
  "htmldiff_test.pdb"
  "htmldiff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htmldiff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
