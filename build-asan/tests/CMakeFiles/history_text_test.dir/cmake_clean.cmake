file(REMOVE_RECURSE
  "CMakeFiles/history_text_test.dir/history_text_test.cc.o"
  "CMakeFiles/history_text_test.dir/history_text_test.cc.o.d"
  "history_text_test"
  "history_text_test.pdb"
  "history_text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
