# Empty dependencies file for history_text_test.
# This may be replaced when dependencies are built.
