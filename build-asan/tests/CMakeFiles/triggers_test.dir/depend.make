# Empty dependencies file for triggers_test.
# This may be replaced when dependencies are built.
