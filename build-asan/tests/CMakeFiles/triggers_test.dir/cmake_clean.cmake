file(REMOVE_RECURSE
  "CMakeFiles/triggers_test.dir/triggers_test.cc.o"
  "CMakeFiles/triggers_test.dir/triggers_test.cc.o.d"
  "triggers_test"
  "triggers_test.pdb"
  "triggers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triggers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
