file(REMOVE_RECURSE
  "CMakeFiles/graph_compare_test.dir/graph_compare_test.cc.o"
  "CMakeFiles/graph_compare_test.dir/graph_compare_test.cc.o.d"
  "graph_compare_test"
  "graph_compare_test.pdb"
  "graph_compare_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_compare_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
