# Empty dependencies file for graph_compare_test.
# This may be replaced when dependencies are built.
