file(REMOVE_RECURSE
  "CMakeFiles/chorel_test.dir/chorel_test.cc.o"
  "CMakeFiles/chorel_test.dir/chorel_test.cc.o.d"
  "chorel_test"
  "chorel_test.pdb"
  "chorel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chorel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
