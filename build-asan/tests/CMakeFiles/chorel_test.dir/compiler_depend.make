# Empty compiler generated dependencies file for chorel_test.
# This may be replaced when dependencies are built.
