# Empty compiler generated dependencies file for bench_encoding.
# This may be replaced when dependencies are built.
