file(REMOVE_RECURSE
  "../bench/bench_encoding"
  "../bench/bench_encoding.pdb"
  "CMakeFiles/bench_encoding.dir/bench_encoding.cc.o"
  "CMakeFiles/bench_encoding.dir/bench_encoding.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
