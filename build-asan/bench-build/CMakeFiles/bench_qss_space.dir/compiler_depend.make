# Empty compiler generated dependencies file for bench_qss_space.
# This may be replaced when dependencies are built.
