file(REMOVE_RECURSE
  "../bench/bench_qss_space"
  "../bench/bench_qss_space.pdb"
  "CMakeFiles/bench_qss_space.dir/bench_qss_space.cc.o"
  "CMakeFiles/bench_qss_space.dir/bench_qss_space.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qss_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
