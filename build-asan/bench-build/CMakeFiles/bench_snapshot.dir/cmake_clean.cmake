file(REMOVE_RECURSE
  "../bench/bench_snapshot"
  "../bench/bench_snapshot.pdb"
  "CMakeFiles/bench_snapshot.dir/bench_snapshot.cc.o"
  "CMakeFiles/bench_snapshot.dir/bench_snapshot.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
