file(REMOVE_RECURSE
  "../bench/bench_annotation_index"
  "../bench/bench_annotation_index.pdb"
  "CMakeFiles/bench_annotation_index.dir/bench_annotation_index.cc.o"
  "CMakeFiles/bench_annotation_index.dir/bench_annotation_index.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_annotation_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
