# Empty compiler generated dependencies file for bench_extract_feasible.
# This may be replaced when dependencies are built.
