file(REMOVE_RECURSE
  "../bench/bench_extract_feasible"
  "../bench/bench_extract_feasible.pdb"
  "CMakeFiles/bench_extract_feasible.dir/bench_extract_feasible.cc.o"
  "CMakeFiles/bench_extract_feasible.dir/bench_extract_feasible.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extract_feasible.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
