file(REMOVE_RECURSE
  "../bench/bench_lorel_paths"
  "../bench/bench_lorel_paths.pdb"
  "CMakeFiles/bench_lorel_paths.dir/bench_lorel_paths.cc.o"
  "CMakeFiles/bench_lorel_paths.dir/bench_lorel_paths.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lorel_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
