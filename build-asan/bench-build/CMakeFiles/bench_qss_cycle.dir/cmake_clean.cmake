file(REMOVE_RECURSE
  "../bench/bench_qss_cycle"
  "../bench/bench_qss_cycle.pdb"
  "CMakeFiles/bench_qss_cycle.dir/bench_qss_cycle.cc.o"
  "CMakeFiles/bench_qss_cycle.dir/bench_qss_cycle.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qss_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
