# Empty compiler generated dependencies file for bench_qss_cycle.
# This may be replaced when dependencies are built.
