# Empty dependencies file for bench_history_apply.
# This may be replaced when dependencies are built.
