file(REMOVE_RECURSE
  "../bench/bench_history_apply"
  "../bench/bench_history_apply.pdb"
  "CMakeFiles/bench_history_apply.dir/bench_history_apply.cc.o"
  "CMakeFiles/bench_history_apply.dir/bench_history_apply.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_history_apply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
