file(REMOVE_RECURSE
  "../bench/bench_qss_faults"
  "../bench/bench_qss_faults.pdb"
  "CMakeFiles/bench_qss_faults.dir/bench_qss_faults.cc.o"
  "CMakeFiles/bench_qss_faults.dir/bench_qss_faults.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qss_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
