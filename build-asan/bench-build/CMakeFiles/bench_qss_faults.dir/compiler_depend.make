# Empty compiler generated dependencies file for bench_qss_faults.
# This may be replaced when dependencies are built.
