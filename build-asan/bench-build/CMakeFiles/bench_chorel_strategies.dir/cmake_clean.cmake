file(REMOVE_RECURSE
  "../bench/bench_chorel_strategies"
  "../bench/bench_chorel_strategies.pdb"
  "CMakeFiles/bench_chorel_strategies.dir/bench_chorel_strategies.cc.o"
  "CMakeFiles/bench_chorel_strategies.dir/bench_chorel_strategies.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chorel_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
