# Empty dependencies file for bench_chorel_strategies.
# This may be replaced when dependencies are built.
