file(REMOVE_RECURSE
  "../bench/bench_diff"
  "../bench/bench_diff.pdb"
  "CMakeFiles/bench_diff.dir/bench_diff.cc.o"
  "CMakeFiles/bench_diff.dir/bench_diff.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
