file(REMOVE_RECURSE
  "CMakeFiles/library_qss.dir/library_qss.cpp.o"
  "CMakeFiles/library_qss.dir/library_qss.cpp.o.d"
  "library_qss"
  "library_qss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/library_qss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
