# Empty dependencies file for library_qss.
# This may be replaced when dependencies are built.
