# Empty dependencies file for htmldiff_demo.
# This may be replaced when dependencies are built.
