file(REMOVE_RECURSE
  "CMakeFiles/htmldiff_demo.dir/htmldiff_demo.cpp.o"
  "CMakeFiles/htmldiff_demo.dir/htmldiff_demo.cpp.o.d"
  "htmldiff_demo"
  "htmldiff_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htmldiff_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
