# Empty dependencies file for doem_shell.
# This may be replaced when dependencies are built.
