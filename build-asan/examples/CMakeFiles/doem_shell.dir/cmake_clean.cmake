file(REMOVE_RECURSE
  "CMakeFiles/doem_shell.dir/doem_shell.cpp.o"
  "CMakeFiles/doem_shell.dir/doem_shell.cpp.o.d"
  "doem_shell"
  "doem_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doem_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
