// Fan-out cost of the split QSS API (DESIGN.md §6g): one poll loop over
// G poll groups delivering to G×S registered filters through the
// layered PollGroupManager + SubscriberRegistry path. Subscribers in one
// group share an entry label and filter text, so the per-poll work is
// one history append + one filter evaluation per group plus S
// notification deliveries — the sweep's top case registers 1,000,000
// filters over 100 distinct poll groups. Registration is untimed; the
// timed region is the polling window. A twin-check benchmark re-runs a
// small configuration through the legacy name-keyed facade and aborts
// unless the notification digests are byte-identical.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "qss/qss.h"
#include "testing/generators.h"

namespace doem {
namespace {

constexpr int64_t kWindowTicks = 20;

const char* const kLeaves[] = {"name", "price", "address", "parking", ""};

// Distinct (polling query, frequency) pairs: leaf cycles fastest,
// interval grows every 5 groups, so `groups` groups have `groups`
// distinct poll-group keys.
qss::Subscription GroupMember(size_t group, size_t member) {
  const char* leaf = kLeaves[group % 5];
  qss::Subscription sub;
  sub.name = "G" + std::to_string(group) + "S" + std::to_string(member);
  sub.entry = "G" + std::to_string(group);
  sub.frequency.interval_ticks = static_cast<int64_t>(group / 5 + 1);
  sub.polling_query = *leaf == '\0'
                          ? std::string("select guide.restaurant")
                          : "select guide.restaurant." + std::string(leaf);
  std::string label = *leaf == '\0' ? "restaurant" : leaf;
  sub.filter_query =
      "select " + sub.entry + "." + label + "<cre at T> where T > t[-1]";
  return sub;
}

// Order-sensitive FNV-1a over everything a subscriber observes.
struct Digest {
  uint64_t h = 1469598103934665603ull;
  uint64_t count = 0;

  void Mix(const std::string& bytes) {
    for (unsigned char c : bytes) {
      h ^= c;
      h *= 1099511628211ull;
    }
  }
  // The full digest (rows rendered to text) for twin-run comparison.
  void Add(const qss::Notification& n) {
    AddCheap(n);
    Mix(n.result.RowsToString());
  }
  // Cheap per-notification work for the timed sweep — a realistic
  // subscriber callback, so the measurement is the fan-out path, not
  // text rendering in the harness.
  void AddCheap(const qss::Notification& n) {
    ++count;
    Mix(n.subscription);
    Mix(std::to_string(n.poll_time.ticks));
    Mix(std::to_string(n.poll_index));
    Mix(std::to_string(n.result.rows.size()));
  }
};

void BM_QssFanOut(benchmark::State& state) {
  size_t groups = static_cast<size_t>(state.range(0));
  size_t per_group = static_cast<size_t>(state.range(1));

  OemDatabase base = testing::SyntheticGuide(50);
  OemHistory script = testing::SyntheticGuideHistory(base, 64, 2);
  Timestamp start = Timestamp::FromDate(1997, 1, 1);
  qss::ScriptedSource source(base, script);

  obs::MetricsRegistry metrics;
  qss::QssOptions opts;
  opts.observability.metrics = &metrics;
  // Deliver at every poll regardless of filter matches, so the timed
  // region always exercises the full notification path.
  opts.notify_empty = true;
  qss::PollGroupManager manager(&source, start, opts);
  qss::SubscriberRegistry registry(&manager);

  // Registration is untimed: it happens once, the polling loop is the
  // steady state being measured.
  Digest digest;
  for (size_t g = 0; g < groups; ++g) {
    for (size_t s = 0; s < per_group; ++s) {
      auto handle = registry.Subscribe(
          GroupMember(g, s),
          [&digest](const qss::Notification& n) { digest.AddCheap(n); });
      if (!handle.ok()) {
        state.SkipWithError(handle.status().ToString().c_str());
        return;
      }
    }
  }
  // One DOEM history (and one shared entry arc) per distinct poll group.
  if (metrics.GaugeValue("qss.group.count") != static_cast<int64_t>(groups) ||
      metrics.GaugeValue("qss.group.entries") != static_cast<int64_t>(groups) ||
      metrics.GaugeValue("qss.group.subscribers") !=
          static_cast<int64_t>(groups * per_group)) {
    state.SkipWithError("qss.group.* gauges disagree with the registration");
    return;
  }

  for (auto _ : state) {
    Status st =
        manager.AdvanceTo(Timestamp(manager.now().ticks + kWindowTicks));
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }

  state.SetItemsProcessed(static_cast<int64_t>(digest.count));
  state.counters["groups"] = static_cast<double>(groups);
  state.counters["filters"] = static_cast<double>(groups * per_group);
  state.counters["notifications"] = static_cast<double>(digest.count);
  state.counters["notifications_per_tick"] =
      benchmark::Counter(static_cast<double>(digest.count) /
                         static_cast<double>(state.iterations() *
                                             kWindowTicks));
  state.counters["filter_evals"] =
      static_cast<double>(metrics.CounterValue("qss.group.filter_evals"));
  state.counters["filter_shared"] =
      static_cast<double>(metrics.CounterValue("qss.group.filter_shared"));
}
BENCHMARK(BM_QssFanOut)
    ->Args({4, 1000})      //   4k filters, every group due every tick
    ->Args({100, 100})     //  10k filters over 100 distinct groups
    ->Args({100, 10000})   //   1M filters over 100 distinct groups
    ->ArgNames({"groups", "per_group"})
    ->Unit(benchmark::kMillisecond);

// The layered path must be byte-identical to the legacy facade: same
// notifications, same order, same rows. Runs the same small scenario
// both ways and compares order-sensitive digests.
void BM_QssFanOutTwinCheck(benchmark::State& state) {
  constexpr size_t kGroups = 4;
  constexpr size_t kPerGroup = 50;
  OemDatabase base = testing::SyntheticGuide(20);
  OemHistory script = testing::SyntheticGuideHistory(base, 12, 3);
  Timestamp start = Timestamp::FromDate(1997, 1, 1);

  auto run = [&](bool layered) {
    qss::ScriptedSource source(base, script);
    qss::QssOptions opts;
    opts.notify_empty = true;
    Digest digest;
    auto record = [&digest](const qss::Notification& n) { digest.Add(n); };
    if (layered) {
      qss::PollGroupManager manager(&source, start, opts);
      qss::SubscriberRegistry registry(&manager);
      for (size_t g = 0; g < kGroups; ++g) {
        for (size_t s = 0; s < kPerGroup; ++s) {
          auto h = registry.Subscribe(GroupMember(g, s), record);
          if (!h.ok()) return Digest{};
        }
      }
      if (!manager.AdvanceTo(Timestamp(start.ticks + 11)).ok()) {
        return Digest{};
      }
    } else {
      qss::QuerySubscriptionService qss(&source, start, opts);
      for (size_t g = 0; g < kGroups; ++g) {
        for (size_t s = 0; s < kPerGroup; ++s) {
          if (!qss.Subscribe(GroupMember(g, s), record).ok()) {
            return Digest{};
          }
        }
      }
      if (!qss.AdvanceTo(Timestamp(start.ticks + 11)).ok()) return Digest{};
    }
    return digest;
  };

  for (auto _ : state) {
    Digest layered = run(/*layered=*/true);
    Digest facade = run(/*layered=*/false);
    if (layered.count == 0 || layered.h != facade.h ||
        layered.count != facade.count) {
      state.SkipWithError("layered and facade notification digests differ");
      return;
    }
    benchmark::DoNotOptimize(layered.h);
  }
}
BENCHMARK(BM_QssFanOutTwinCheck)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace doem

BENCHMARK_MAIN();
