// Fault-tolerance overhead in the QSS polling pipeline: what the
// health/retry bookkeeping costs on the steady-state (fault-free) poll
// cycle, what a retrying transient fault costs, and how cheap a
// quarantined (circuit-open) group is per skipped poll. The fault-free
// numbers should track bench_qss_cycle's BM_QssKeyedSource.

#include <benchmark/benchmark.h>

#include "qss/fault.h"
#include "qss/qss.h"
#include "testing/generators.h"

namespace doem {
namespace {

constexpr int64_t kPolls = 10;

qss::Subscription MakeSub(int i) {
  qss::Subscription sub;
  sub.name = "S" + std::to_string(i);
  sub.frequency = *qss::FrequencySpec::Parse("every day");
  sub.polling_query = "select guide.restaurant";
  sub.filter_query =
      "select " + sub.name + ".restaurant<cre at T> where T > t[-1]";
  return sub;
}

// Steady state, no decorator: the health/report bookkeeping alone. The
// baseline to compare against bench_qss_cycle (which predates the
// fault-tolerance layer).
void BM_QssFaultFreeBaseline(benchmark::State& state) {
  OemDatabase base =
      testing::SyntheticGuide(static_cast<size_t>(state.range(0)));
  OemHistory script = testing::SyntheticGuideHistory(base, kPolls, 5);
  for (auto _ : state) {
    state.PauseTiming();
    qss::ScriptedSource source(base, script);
    qss::QuerySubscriptionService service(
        &source, Timestamp(Timestamp::FromDate(1997, 1, 1).ticks));
    Status st = service.Subscribe(MakeSub(0), nullptr);
    assert(st.ok());
    (void)st;
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        service
            .AdvanceTo(Timestamp(Timestamp::FromDate(1997, 1, 1).ticks +
                                 kPolls - 1))
            .ok());
  }
  state.SetItemsProcessed(state.iterations() * kPolls);
}
BENCHMARK(BM_QssFaultFreeBaseline)
    ->Arg(50)
    ->Arg(200)
    ->ArgNames({"restaurants"})
    ->Unit(benchmark::kMillisecond);

// The decorator in passthrough mode plus an armed (but never triggered)
// retry/deadline policy: the full fault-tolerance plumbing on the hot
// path with zero faults.
void BM_QssFaultInjectorPassthrough(benchmark::State& state) {
  OemDatabase base =
      testing::SyntheticGuide(static_cast<size_t>(state.range(0)));
  OemHistory script = testing::SyntheticGuideHistory(base, kPolls, 5);
  qss::QssOptions opts;
  opts.fault_tolerance.retry.max_attempts = 3;
  opts.fault_tolerance.retry.backoff_base_ticks = 1;
  opts.fault_tolerance.retry.poll_deadline_ticks = 1000;
  for (auto _ : state) {
    state.PauseTiming();
    qss::ScriptedSource inner(base, script);
    qss::FaultInjectingSource source(&inner);
    qss::QuerySubscriptionService service(
        &source, Timestamp(Timestamp::FromDate(1997, 1, 1).ticks), opts);
    Status st = service.Subscribe(MakeSub(0), nullptr);
    assert(st.ok());
    (void)st;
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        service
            .AdvanceTo(Timestamp(Timestamp::FromDate(1997, 1, 1).ticks +
                                 kPolls - 1))
            .ok());
  }
  state.SetItemsProcessed(state.iterations() * kPolls);
}
BENCHMARK(BM_QssFaultInjectorPassthrough)
    ->Arg(50)
    ->Arg(200)
    ->ArgNames({"restaurants"})
    ->Unit(benchmark::kMillisecond);

// Every other poll fails transiently and is recovered by one retry.
void BM_QssTransientFaultRetry(benchmark::State& state) {
  OemDatabase base = testing::SyntheticGuide(200);
  OemHistory script = testing::SyntheticGuideHistory(base, kPolls, 5);
  qss::QssOptions opts;
  opts.fault_tolerance.retry.max_attempts = 2;
  for (auto _ : state) {
    state.PauseTiming();
    qss::ScriptedSource inner(base, script);
    qss::FaultInjectingSource source(&inner);
    // Alternating: fail call 1, pass 2, fail 3 (the retry of poll 2's
    // schedule shifts parity, so just fail every third call).
    for (int64_t c = 0; c < 3 * kPolls; c += 3) {
      source.FailPolls(static_cast<size_t>(c), 1);
    }
    state.ResumeTiming();
    qss::PollReport report;
    qss::QuerySubscriptionService service(
        &source, Timestamp(Timestamp::FromDate(1997, 1, 1).ticks), opts);
    Status st = service.Subscribe(MakeSub(0), nullptr);
    assert(st.ok());
    (void)st;
    benchmark::DoNotOptimize(
        service
            .AdvanceTo(Timestamp(Timestamp::FromDate(1997, 1, 1).ticks +
                                 kPolls - 1),
                       &report)
            .ok());
  }
  state.SetItemsProcessed(state.iterations() * kPolls);
}
BENCHMARK(BM_QssTransientFaultRetry)->Unit(benchmark::kMillisecond);

// A quarantined group: after the breaker opens, every scheduled poll is
// a cheap MissedPoll record. Measures the per-skip cost of an outage.
void BM_QssQuarantinedGroupSkips(benchmark::State& state) {
  OemDatabase base = testing::SyntheticGuide(200);
  qss::QssOptions opts;
  opts.fault_tolerance.quarantine_after = 2;
  opts.fault_tolerance.quarantine_cooldown_ticks = 1000000;  // stay dark for the whole run
  opts.fault_tolerance.on_error = [](const qss::PollError&) {};
  constexpr int64_t kDays = 1000;
  for (auto _ : state) {
    state.PauseTiming();
    qss::ScriptedSource inner(base, OemHistory());
    qss::FaultInjectingSource source(&inner);
    source.FailPolls(0, 0);
    qss::QuerySubscriptionService service(&source, Timestamp(0), opts);
    Status st = service.Subscribe(MakeSub(0), nullptr);
    assert(st.ok());
    (void)st;
    state.ResumeTiming();
    benchmark::DoNotOptimize(service.AdvanceTo(Timestamp(kDays)).ok());
  }
  state.SetItemsProcessed(state.iterations() * kDays);
}
BENCHMARK(BM_QssQuarantinedGroupSkips)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace doem

BENCHMARK_MAIN();
