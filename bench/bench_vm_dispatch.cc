// DESIGN.md §6f: bytecode VM vs tree-walking evaluator. Two sweeps: raw
// path-step dispatch as the path grows, and the QSS per-poll filter
// shape (time-bound Chorel over a churned history, translated strategy)
// as the history grows. The `vm` axis toggles the engine; rows are
// byte-identical either way (vm_test pins that), only speed differs.
// The §6f acceptance claim: at history:128 the vm:1 filter run is >= 2x
// faster than vm:0.

#include <benchmark/benchmark.h>

#include <cassert>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "chorel/chorel.h"
#include "chorel/doem_view.h"
#include "lorel/eval.h"
#include "lorel/lorel.h"
#include "testing/generators.h"
#include "vm/compile.h"
#include "vm/vm.h"

namespace doem {
namespace {

// Raw dispatch cost: one compiled query evaluated repeatedly against a
// fixed guide, walker vs VM, as the path gets longer. package_results
// is off so the loop kernel (step enumeration, binding, emit) is all
// that is timed — the per-poll hot path inside QSS.
void BM_VmPathLength(benchmark::State& state) {
  static const char* kQueries[] = {
      "select guide",
      "select guide.restaurant",
      "select guide.restaurant.address",
      "select guide.restaurant.address.street",
  };
  size_t depth = static_cast<size_t>(state.range(0));
  bool vm = state.range(1) != 0;
  const bench::Workload& w = bench::GuideWorkload(200, 6, 4);
  chorel::DoemView view(w.doem, nullptr);
  auto nq = lorel::ParseAndNormalize(kQueries[depth - 1]);
  assert(nq.ok());
  vm::Program program;
  if (vm) {
    auto p = vm::Compile(*nq);
    assert(p.ok());
    program = std::move(p).value();
  }
  lorel::EvalOptions opts;
  opts.package_results = false;
  size_t rows = 0;
  for (auto _ : state) {
    auto r = vm ? vm::Run(program, view, opts)
                : lorel::Evaluate(*nq, view, opts);
    assert(r.ok());
    rows = r->rows.size();
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_VmPathLength)
    ->ArgsProduct({{1, 2, 3, 4}, {0, 1}})
    ->ArgNames({"depth", "vm"})
    ->Unit(benchmark::kMicrosecond);

// The QSS per-poll filter path: a cached CompiledQuery with a QSS time
// window (T > t[-1]) evaluated under the translated strategy against a
// DOEM database carrying `history` polls of churn. Each iteration is
// exactly one poll's filter evaluation at full history depth.
void BM_VmChorelFilter(benchmark::State& state) {
  size_t history = static_cast<size_t>(state.range(0));
  bool vm = state.range(1) != 0;
  OemDatabase base = testing::SyntheticGuide(100);
  OemHistory churn = testing::SyntheticGuideChurn(base, history, 8);
  auto d = DoemDatabase::Build(base, churn);
  assert(d.ok());
  std::vector<Timestamp> polls;
  for (const HistoryStep& step : churn.steps()) polls.push_back(step.time);
  chorel::ChorelEngineOptions eopts;
  eopts.use_vm = vm;
  chorel::ChorelEngine engine(*d, eopts);
  // The churn script updates prices, so the QSS-shaped window query that
  // actually matches is the <upd> triple binding.
  auto q = chorel::CompileChorel(
      "select T, OV, NV from guide.restaurant.price"
      "<upd at T from OV to NV> where T > t[-1]");
  assert(q.ok());
  lorel::EvalOptions opts;
  opts.polling_times = &polls;
  size_t rows = 0;
  for (auto _ : state) {
    auto r = engine.RunCompiled(&*q, chorel::Strategy::kTranslated, opts);
    assert(r.ok());
    rows = r->rows.size();
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_VmChorelFilter)
    ->ArgsProduct({{8, 32, 128}, {0, 1}})
    ->ArgNames({"history", "vm"})
    ->Unit(benchmark::kMicrosecond);

// Same shape, direct strategy with index seeding — the configuration
// where the VM's kSeedAnn opcode and the walker's seeded enumeration
// both read the same annotation-index postings.
void BM_VmDirectSeeded(benchmark::State& state) {
  size_t history = static_cast<size_t>(state.range(0));
  bool vm = state.range(1) != 0;
  OemDatabase base = testing::SyntheticGuide(100);
  OemHistory churn = testing::SyntheticGuideChurn(base, history, 8);
  auto d = DoemDatabase::Build(base, churn);
  assert(d.ok());
  std::vector<Timestamp> polls;
  for (const HistoryStep& step : churn.steps()) polls.push_back(step.time);
  chorel::ChorelEngineOptions eopts;
  eopts.use_vm = vm;
  eopts.seed_from_index = true;
  chorel::ChorelEngine engine(*d, eopts);
  auto q = chorel::CompileChorel(
      "select T, OV, NV from guide.restaurant.price"
      "<upd at T from OV to NV> where T > t[-1]");
  assert(q.ok());
  lorel::EvalOptions opts;
  opts.polling_times = &polls;
  for (auto _ : state) {
    auto r = engine.RunCompiled(&*q, chorel::Strategy::kDirect, opts);
    assert(r.ok());
    benchmark::DoNotOptimize(r->rows.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_VmDirectSeeded)
    ->ArgsProduct({{8, 32, 128}, {0, 1}})
    ->ArgNames({"history", "vm"})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace doem

BENCHMARK_MAIN();
