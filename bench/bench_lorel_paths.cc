// E6: Lorel path evaluation over plain OEM — simple paths, shared-prefix
// multi-path queries, '#' wildcards (which must traverse shared subobjects
// and cycles), and `like` filters, across database sizes.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "lorel/lorel.h"

namespace doem {
namespace {

const char* kQueries[] = {
    "select guide.restaurant",
    "select guide.restaurant.name",
    "select N, P from guide.restaurant R, R.name N, R.price P "
    "where P < 20",
    "select guide.#",
    "select guide.restaurant where "
    "guide.restaurant.address.# like \"%Lytton%\"",
    "select R from guide.restaurant R where "
    "exists A in R.address : A.city = \"Palo Alto\"",
};

void BM_LorelQuery(benchmark::State& state) {
  const auto& w = bench::GuideWorkload(
      static_cast<size_t>(state.range(0)), 0, 0);
  lorel::OemView view(w.base);
  std::string q = kQueries[state.range(1)];
  auto nq = lorel::ParseAndNormalize(q);
  size_t rows = 0;
  for (auto _ : state) {
    auto r = lorel::Evaluate(*nq, view);
    rows = r.ok() ? r->rows.size() : 0;
    benchmark::DoNotOptimize(r.ok());
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["db_nodes"] = static_cast<double>(w.base.node_count());
}
BENCHMARK(BM_LorelQuery)
    ->ArgsProduct({{100, 500, 2000, 8000}, {0, 1, 2, 3, 4, 5}})
    ->ArgNames({"restaurants", "query"})
    ->Unit(benchmark::kMicrosecond);

// Parsing + normalization alone.
void BM_ParseNormalize(benchmark::State& state) {
  std::string q = kQueries[state.range(0)];
  for (auto _ : state) {
    auto nq = lorel::ParseAndNormalize(q);
    benchmark::DoNotOptimize(nq.ok());
  }
}
BENCHMARK(BM_ParseNormalize)->DenseRange(0, 5)->Unit(benchmark::kMicrosecond);

// Result packaging cost: rows only vs. packaged answer database.
void BM_Packaging(benchmark::State& state) {
  const auto& w = bench::GuideWorkload(2000, 0, 0);
  lorel::OemView view(w.base);
  auto nq = lorel::ParseAndNormalize("select guide.restaurant");
  lorel::EvalOptions opts;
  opts.package_results = state.range(0) == 1;
  for (auto _ : state) {
    auto r = lorel::Evaluate(*nq, view, opts);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_Packaging)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"package"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace doem

BENCHMARK_MAIN();
