// E3: history extraction H(D) and the feasibility check
// D(O_0(D), H(D)) == D (Section 3.2's last two properties).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace doem {
namespace {

void BM_ExtractHistory(benchmark::State& state) {
  const auto& w = bench::GuideWorkload(
      static_cast<size_t>(state.range(0)),
      static_cast<size_t>(state.range(1)), 10);
  size_t steps = 0;
  for (auto _ : state) {
    OemHistory h = w.doem.ExtractHistory();
    steps = h.size();
    benchmark::DoNotOptimize(h.empty());
  }
  state.counters["extracted_steps"] = static_cast<double>(steps);
}
BENCHMARK(BM_ExtractHistory)
    ->ArgsProduct({{100, 500, 2000}, {10, 50}})
    ->Unit(benchmark::kMillisecond);

void BM_IsFeasible(benchmark::State& state) {
  const auto& w = bench::GuideWorkload(
      static_cast<size_t>(state.range(0)),
      static_cast<size_t>(state.range(1)), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.doem.IsFeasible());
  }
}
BENCHMARK(BM_IsFeasible)
    ->ArgsProduct({{100, 500}, {10, 50}})
    ->Unit(benchmark::kMillisecond);

void BM_OriginalSnapshot(benchmark::State& state) {
  const auto& w = bench::GuideWorkload(
      static_cast<size_t>(state.range(0)), 50, 10);
  for (auto _ : state) {
    OemDatabase o = w.doem.OriginalSnapshot();
    benchmark::DoNotOptimize(o.node_count());
  }
}
BENCHMARK(BM_OriginalSnapshot)
    ->Arg(100)
    ->Arg(500)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace doem

BENCHMARK_MAIN();
