// Observability overhead (DESIGN.md §6d): the same QSS polling workload
// as BM_QssHistorySweep, run bare vs. with a MetricsRegistry and
// TraceRecorder attached. The obs layer's budget is <= 5% wall-clock
// overhead with everything enabled; with tracing compiled out
// (-DDOEM_TRACING=OFF) spans vanish entirely and only the atomic metric
// updates remain (~0%). The `obs` arg selects the configuration, so the
// overhead is the ratio of adjacent JSON entries.

#include <benchmark/benchmark.h>

#include <optional>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qss/qss.h"
#include "testing/generators.h"

namespace doem {
namespace {

constexpr int64_t kPolls = 32;

// obs: 0 = bare, 1 = metrics only, 2 = metrics + tracing,
// 3 = metrics + tracing + event log (the full introspection plane).
void BM_QssObsOverhead(benchmark::State& state) {
  int obs_level = static_cast<int>(state.range(0));
  OemDatabase base = testing::SyntheticGuide(100);
  OemHistory script =
      testing::SyntheticGuideChurn(base, static_cast<size_t>(kPolls), 8);
  Timestamp start(Timestamp::FromDate(1997, 1, 1).ticks);

  std::optional<obs::MetricsRegistry> metrics;
  std::optional<obs::TraceRecorder> trace;
  std::optional<obs::EventLog> events;
  qss::QssOptions opts;
  opts.strategy = chorel::Strategy::kTranslated;
  if (obs_level >= 1) {
    metrics.emplace();
    opts.observability.metrics = &*metrics;
  }
  if (obs_level >= 2) {
    trace.emplace();
    opts.observability.trace = &*trace;
  }
  if (obs_level >= 3) {
    events.emplace();
    opts.observability.events = &*events;
  }

  std::optional<qss::ScriptedSource> source;
  std::optional<qss::QuerySubscriptionService> service;
  for (auto _ : state) {
    state.PauseTiming();
    service.reset();
    source.emplace(base, script);
    service.emplace(&*source, start, opts);
    qss::Subscription sub;
    sub.name = "S";
    sub.frequency = *qss::FrequencySpec::Parse("every day");
    sub.polling_query = "select guide.restaurant";
    sub.filter_query = "select S.restaurant<cre at T> where T > t[-1]";
    Status st = service->Subscribe(sub, nullptr);
    assert(st.ok());
    (void)st;
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        service->AdvanceTo(Timestamp(start.ticks + kPolls - 1)).ok());
  }
  state.SetItemsProcessed(state.iterations() * kPolls);
  state.counters["obs"] = static_cast<double>(obs_level);
  if (metrics.has_value()) {
    state.counters["polls_ok"] =
        static_cast<double>(metrics->CounterValue("qss.polls_ok"));
  }
  if (trace.has_value()) {
    state.counters["spans"] = static_cast<double>(trace->Events().size());
    state.counters["spans_dropped"] = static_cast<double>(trace->dropped());
  }
  if (events.has_value()) {
    state.counters["events"] = static_cast<double>(events->recorded());
  }
}
BENCHMARK(BM_QssObsOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->ArgNames({"obs"})
    ->Unit(benchmark::kMillisecond);

// Instrument microcosts, for the budget table in DESIGN.md §6d: one
// counter increment / histogram observe / started-and-dropped span per
// iteration.
void BM_CounterIncrement(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("bench.counter");
  for (auto _ : state) {
    c->Increment();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_CounterIncrement);

void BM_HistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram* h =
      registry.GetHistogram("bench.hist", obs::LatencyBucketsNs());
  int64_t v = 0;
  for (auto _ : state) {
    h->Observe(v += 997);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_HistogramObserve);

void BM_TraceSpan(benchmark::State& state) {
  bool on = state.range(0) != 0;
  obs::TraceRecorder recorder(/*max_events_per_thread=*/1024);
  obs::TraceRecorder* r = on ? &recorder : nullptr;
  for (auto _ : state) {
    obs::TraceSpan span(r, "bench.span", "bench");
    benchmark::DoNotOptimize(r);
  }
  // The bounded buffer saturates; steady-state cost is the dropped path.
}
BENCHMARK(BM_TraceSpan)->Arg(0)->Arg(1)->ArgNames({"recording"});

void BM_EventLogRecord(benchmark::State& state) {
  obs::EventLog log(/*capacity=*/1024);
  Timestamp sim(42);
  for (auto _ : state) {
    log.Record(obs::EventType::kPollFailed, obs::EventSeverity::kInfo, sim,
               "bench.group", "detail");
    benchmark::DoNotOptimize(log.recorded());
  }
  // The ring laps; steady-state cost includes the overwrite path.
}
BENCHMARK(BM_EventLogRecord);

}  // namespace
}  // namespace doem

BENCHMARK_MAIN();
