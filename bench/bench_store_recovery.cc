// Durability-layer costs (DESIGN.md §6e): what a subscription pays per
// committed poll for crash safety, and what a restarted process pays to
// come back. Three sweeps, all over MemoryFile so the numbers isolate
// the format/replay work from disk hardware:
//
//   BM_StoreAppend       — delta-append throughput vs change-set size,
//                          with and without per-append fsync batching.
//   BM_StoreCheckpoint   — cost of driving a fixed history through the
//                          store as the checkpoint interval varies
//                          (interval 1 = checkpoint every poll).
//   BM_StoreRecovery     — cold Open() latency vs committed history
//                          length at a fixed checkpoint interval.
//
// Claims to check: append cost is flat in history length (the log is
// append-only); checkpoint interval trades write amplification
// (bytes_written shrinks as the interval grows) against recovery replay;
// recovery latency grows with the distance back to the last checkpoint,
// not with total history length.

#include <benchmark/benchmark.h>

#include <cassert>
#include <memory>
#include <vector>

#include "doem/doem.h"
#include "store/file.h"
#include "store/store.h"
#include "testing/generators.h"

namespace doem {
namespace {

struct Script {
  OemDatabase base;
  OemHistory history;
};

Script MakeScript(size_t steps, size_t ops_per_step) {
  testing::DatabaseOptions dopts;
  dopts.seed = 17;
  dopts.node_count = 60;
  Script s{testing::RandomDatabase(dopts), OemHistory()};
  testing::HistoryOptions hopts;
  hopts.seed = 18;
  hopts.steps = steps;
  hopts.ops_per_step = ops_per_step;
  s.history = testing::RandomHistory(s.base, hopts);
  return s;
}

// Drives the whole script through a fresh store; returns the file.
std::unique_ptr<store::MemoryFile> DriveScript(const Script& s,
                                               const store::StoreOptions& opts) {
  auto file = std::make_unique<store::MemoryFile>();
  auto st = store::Store::Open(file.get(), opts);
  assert(st.ok());
  auto db = DoemDatabase::FromSnapshot(s.base);
  Status ok = (*st)->Start(*db);
  assert(ok.ok());
  for (const HistoryStep& step : s.history.steps()) {
    ok = db->ApplyChangeSet(step.time, step.changes);
    assert(ok.ok());
    ok = (*st)->Append(step.time, step.changes, *db);
    assert(ok.ok());
  }
  (void)ok;
  return file;
}

void BM_StoreAppend(benchmark::State& state) {
  size_t ops_per_step = static_cast<size_t>(state.range(0));
  bool sync_each = state.range(1) != 0;
  Script s = MakeScript(64, ops_per_step);
  store::StoreOptions opts;
  opts.sync_each_append = sync_each;
  opts.checkpoint_interval = 1 << 30;  // isolate pure delta appends

  int64_t bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    store::MemoryFile file;
    auto st = store::Store::Open(&file, opts);
    auto db = DoemDatabase::FromSnapshot(s.base);
    Status ok = (*st)->Start(*db);
    for (const HistoryStep& step : s.history.steps()) {
      ok = db->ApplyChangeSet(step.time, step.changes);
    }
    state.ResumeTiming();
    // Re-append the script's deltas against the final db: Append() only
    // serializes the delta, so `current` is consulted for checkpoints
    // alone (never taken at this interval).
    for (const HistoryStep& step : s.history.steps()) {
      ok = (*st)->Append(step.time, step.changes, *db);
    }
    benchmark::DoNotOptimize(ok.ok());
    bytes = static_cast<int64_t>(file.data().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(s.history.steps().size()));
  state.counters["log_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_StoreAppend)
    ->ArgsProduct({{1, 4, 16}, {0, 1}})
    ->ArgNames({"ops", "sync"});

void BM_StoreCheckpoint(benchmark::State& state) {
  size_t interval = static_cast<size_t>(state.range(0));
  Script s = MakeScript(64, 4);
  store::StoreOptions opts;
  opts.checkpoint_interval = interval;

  int64_t bytes = 0;
  for (auto _ : state) {
    auto file = DriveScript(s, opts);
    benchmark::DoNotOptimize(file->data().data());
    bytes = static_cast<int64_t>(file->data().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(s.history.steps().size()));
  state.counters["log_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_StoreCheckpoint)->Arg(1)->Arg(7)->Arg(16)->Arg(64)
    ->ArgNames({"interval"});

void BM_StoreRecovery(benchmark::State& state) {
  size_t steps = static_cast<size_t>(state.range(0));
  Script s = MakeScript(steps, 4);
  store::StoreOptions opts;
  opts.checkpoint_interval = 16;
  auto file = DriveScript(s, opts);

  for (auto _ : state) {
    // Recover from a copy: Open() repairs in place (truncate + sync) and
    // must see the original bytes every iteration.
    store::MemoryFile cold;
    Status ok = cold.Append(file->data());
    auto st = store::Store::Open(&cold, opts);
    benchmark::DoNotOptimize(st.ok() && (*st)->has_state());
    (void)ok;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["log_bytes"] = static_cast<double>(file->data().size());
  state.counters["history"] = static_cast<double>(steps);
}
BENCHMARK(BM_StoreRecovery)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->ArgNames({"history"});

}  // namespace
}  // namespace doem

BENCHMARK_MAIN();
