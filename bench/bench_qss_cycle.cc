// E8: end-to-end QSS polling cycle (Figure 6: poll -> diff -> annotate ->
// filter -> notify) — cost per poll as a function of source size, number
// of subscriptions, and keyed vs. structural differencing.

#include <benchmark/benchmark.h>

#include <memory>
#include <optional>

#include "qss/executor.h"
#include "qss/qss.h"
#include "testing/generators.h"

namespace doem {
namespace {

constexpr int64_t kPolls = 10;

struct PollReportTotals {
  int64_t fetch_ns = 0;
  int64_t diff_ns = 0;
  int64_t apply_ns = 0;
};

void RunCycles(benchmark::State& state, bool preserve_ids) {
  size_t restaurants = static_cast<size_t>(state.range(0));
  int subs = static_cast<int>(state.range(1));
  OemDatabase base = testing::SyntheticGuide(restaurants);
  OemHistory script = testing::SyntheticGuideHistory(
      base, static_cast<size_t>(kPolls), 5);
  Timestamp start(Timestamp::FromDate(1997, 1, 1).ticks);

  size_t notifications = 0;
  for (auto _ : state) {
    state.PauseTiming();
    qss::ScriptedSource source(base, script, preserve_ids);
    qss::QuerySubscriptionService service(&source, start);
    notifications = 0;
    for (int s = 0; s < subs; ++s) {
      qss::Subscription sub;
      sub.name = "S" + std::to_string(s);
      sub.frequency = *qss::FrequencySpec::Parse("every day");
      sub.polling_query = "select guide.restaurant";
      sub.filter_query = "select " + sub.name +
                         ".restaurant<cre at T> where T > t[-1]";
      Status st = service.Subscribe(
          sub, [&](const qss::Notification&) { ++notifications; });
      assert(st.ok());
      (void)st;
    }
    state.ResumeTiming();
    Status st =
        service.AdvanceTo(Timestamp(start.ticks + kPolls - 1));
    benchmark::DoNotOptimize(st.ok());
  }
  state.SetItemsProcessed(state.iterations() * kPolls);
  state.counters["polls"] = static_cast<double>(kPolls);
  state.counters["notifications"] = static_cast<double>(notifications);
}

void BM_QssKeyedSource(benchmark::State& state) {
  RunCycles(state, /*preserve_ids=*/true);
}
BENCHMARK(BM_QssKeyedSource)
    ->ArgsProduct({{50, 200, 1000}, {1, 8}})
    ->ArgNames({"restaurants", "subs"})
    ->Unit(benchmark::kMillisecond);

void BM_QssStructuralSource(benchmark::State& state) {
  RunCycles(state, /*preserve_ids=*/false);
}
BENCHMARK(BM_QssStructuralSource)
    ->ArgsProduct({{50, 200, 1000}, {1, 8}})
    ->ArgNames({"restaurants", "subs"})
    ->Unit(benchmark::kMillisecond);

// Parallel poll engine scaling (DESIGN.md §6b): many poll groups due at
// every tick, swept over executor thread counts. With
// merge_similar_polls off every subscription is its own poll group, so
// each wave carries `groups` independent fetch→diff chains. The
// groups_per_sec counter is the scaling curve; per-phase report
// counters show where the time goes.
void BM_QssParallelScaling(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  size_t groups = static_cast<size_t>(state.range(1));
  OemDatabase base = testing::SyntheticGuide(200);
  OemHistory script = testing::SyntheticGuideHistory(
      base, static_cast<size_t>(kPolls), 5);
  Timestamp start(Timestamp::FromDate(1997, 1, 1).ticks);

  qss::SerialExecutor serial;
  std::unique_ptr<qss::ThreadPoolExecutor> pool;
  qss::QssOptions opts;
  opts.merge_similar_polls = false;
  if (threads > 1) {
    pool = std::make_unique<qss::ThreadPoolExecutor>(threads);
    opts.executor = pool.get();
  } else {
    opts.executor = &serial;
  }

  PollReportTotals totals;
  for (auto _ : state) {
    state.PauseTiming();
    qss::ScriptedSource source(base, script);
    qss::QuerySubscriptionService service(&source, start, opts);
    for (size_t g = 0; g < groups; ++g) {
      qss::Subscription sub;
      sub.name = "G" + std::to_string(g);
      sub.frequency = *qss::FrequencySpec::Parse("every day");
      sub.polling_query = "select guide.restaurant";
      sub.filter_query = "select " + sub.name +
                         ".restaurant<cre at T> where T > t[-1]";
      Status st = service.Subscribe(sub, nullptr);
      assert(st.ok());
      (void)st;
    }
    state.ResumeTiming();
    qss::PollReport report;
    Status st = service.AdvanceTo(Timestamp(start.ticks + kPolls - 1),
                                  &report);
    benchmark::DoNotOptimize(st.ok());
    state.PauseTiming();
    totals.fetch_ns += report.fetch_ns;
    totals.diff_ns += report.diff_ns;
    totals.apply_ns += report.apply_ns;
    state.ResumeTiming();
  }
  int64_t group_polls =
      static_cast<int64_t>(state.iterations()) * kPolls *
      static_cast<int64_t>(groups);
  state.SetItemsProcessed(group_polls);
  state.counters["groups_per_sec"] = benchmark::Counter(
      static_cast<double>(group_polls), benchmark::Counter::kIsRate);
  state.counters["threads"] = static_cast<double>(threads);
  double iters = static_cast<double>(state.iterations());
  state.counters["fetch_ms"] =
      static_cast<double>(totals.fetch_ns) / 1e6 / iters;
  state.counters["diff_ms"] =
      static_cast<double>(totals.diff_ns) / 1e6 / iters;
  state.counters["apply_ms"] =
      static_cast<double>(totals.apply_ns) / 1e6 / iters;
}
BENCHMARK(BM_QssParallelScaling)
    ->ArgsProduct({{1, 2, 4, 8}, {32}})
    ->ArgNames({"threads", "groups"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// History-length sweep (DESIGN.md §6c): per-poll filter cost as the
// accumulated DOEM history grows, with incremental cache maintenance vs
// the per-poll rebuild ablation. The churn script only updates existing
// prices, so the snapshot the filter walks is the same size at every
// poll — any per-poll growth is history-proportional work, i.e. the
// from-scratch encoding rebuild that ApplyDelta patching eliminates.
// With incremental=1 the per-poll counters stay flat in `history`; with
// incremental=0 they grow linearly.
void BM_QssHistorySweep(benchmark::State& state) {
  size_t polls = static_cast<size_t>(state.range(0));
  bool incremental = state.range(1) != 0;
  OemDatabase base = testing::SyntheticGuide(100);
  OemHistory script = testing::SyntheticGuideChurn(base, polls, 8);
  Timestamp start(Timestamp::FromDate(1997, 1, 1).ticks);
  qss::QssOptions opts;
  opts.strategy = chorel::Strategy::kTranslated;
  opts.acceleration.incremental_filter = incremental;
  opts.acceleration.vm_filter = state.range(2) != 0;

  int64_t filter_ns = 0;
  int64_t apply_ns = 0;
  // Setup state lives outside the loop so each iteration's teardown (the
  // history-sized DOEM database and caches) runs in the paused region,
  // not inside the timed one.
  std::optional<qss::ScriptedSource> source;
  std::optional<qss::QuerySubscriptionService> service;
  for (auto _ : state) {
    state.PauseTiming();
    service.reset();
    source.emplace(base, script);
    service.emplace(&*source, start, opts);
    qss::Subscription sub;
    sub.name = "S";
    sub.frequency = *qss::FrequencySpec::Parse("every day");
    sub.polling_query = "select guide.restaurant";
    sub.filter_query = "select S.restaurant<cre at T> where T > t[-1]";
    Status st = service->Subscribe(sub, nullptr);
    assert(st.ok());
    (void)st;
    state.ResumeTiming();
    qss::PollReport report;
    benchmark::DoNotOptimize(
        service
            ->AdvanceTo(Timestamp(start.ticks +
                                  static_cast<int64_t>(polls) - 1),
                        &report)
            .ok());
    state.PauseTiming();
    filter_ns += report.filter_ns;
    apply_ns += report.apply_ns;
    state.ResumeTiming();
  }
  double total_polls = static_cast<double>(state.iterations()) *
                       static_cast<double>(polls);
  state.SetItemsProcessed(static_cast<int64_t>(total_polls));
  state.counters["filter_us_per_poll"] =
      static_cast<double>(filter_ns) / 1e3 / total_polls;
  state.counters["apply_us_per_poll"] =
      static_cast<double>(apply_ns) / 1e3 / total_polls;
  state.counters["poll_us"] =
      static_cast<double>(filter_ns + apply_ns) / 1e3 / total_polls;
}
BENCHMARK(BM_QssHistorySweep)
    ->ArgsProduct({{8, 32, 128}, {0, 1}, {0, 1}})
    ->ArgNames({"history", "incremental", "vm"})
    ->Unit(benchmark::kMillisecond);

// Filter evaluation strategy inside the QSS loop: direct vs. translated.
void BM_QssFilterStrategy(benchmark::State& state) {
  OemDatabase base = testing::SyntheticGuide(200);
  OemHistory script = testing::SyntheticGuideHistory(base, kPolls, 5);
  Timestamp start(Timestamp::FromDate(1997, 1, 1).ticks);
  qss::QssOptions opts;
  opts.strategy = state.range(0) == 0 ? chorel::Strategy::kDirect
                                      : chorel::Strategy::kTranslated;
  for (auto _ : state) {
    state.PauseTiming();
    qss::ScriptedSource source(base, script);
    qss::QuerySubscriptionService service(&source, start, opts);
    qss::Subscription sub;
    sub.name = "S";
    sub.frequency = *qss::FrequencySpec::Parse("every day");
    sub.polling_query = "select guide.restaurant";
    sub.filter_query = "select S.restaurant<cre at T> where T > t[-1]";
    Status st = service.Subscribe(sub, nullptr);
    assert(st.ok());
    (void)st;
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        service.AdvanceTo(Timestamp(start.ticks + kPolls - 1)).ok());
  }
  state.SetItemsProcessed(state.iterations() * kPolls);
}
BENCHMARK(BM_QssFilterStrategy)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"translated"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace doem

BENCHMARK_MAIN();
