// E9: the QSS space-saving proposals of Section 6.1 —
//   (1) merging DOEM databases of subscriptions with similar polling
//       queries, and
//   (3) trading accuracy for space by keeping only two snapshots.
// Reported via counters: retained graph nodes/arcs/annotations after a
// fixed polling run, plus the time of the run.

#include <benchmark/benchmark.h>

#include "doem/annotation_index.h"
#include "qss/qss.h"
#include "testing/generators.h"

namespace doem {
namespace {

constexpr int64_t kPolls = 20;

void RunAndMeasure(benchmark::State& state, qss::QssOptions opts,
                   int subs) {
  OemDatabase base = testing::SyntheticGuide(200);
  OemHistory script =
      testing::SyntheticGuideHistory(base, static_cast<size_t>(kPolls), 6);
  Timestamp start(Timestamp::FromDate(1997, 1, 1).ticks);

  double nodes = 0, arcs = 0, annots = 0, groups = 0;
  for (auto _ : state) {
    state.PauseTiming();
    qss::ScriptedSource source(base, script);
    qss::QuerySubscriptionService service(&source, start, opts);
    for (int s = 0; s < subs; ++s) {
      qss::Subscription sub;
      sub.name = "S" + std::to_string(s);
      sub.frequency = *qss::FrequencySpec::Parse("every day");
      sub.polling_query = "select guide.restaurant";
      sub.filter_query = "select " + sub.name +
                         ".restaurant<cre at T> where T > t[-1]";
      Status st = service.Subscribe(sub, nullptr);
      assert(st.ok());
      (void)st;
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        service.AdvanceTo(Timestamp(start.ticks + kPolls - 1)).ok());
    state.PauseTiming();
    nodes = arcs = annots = 0;
    groups = static_cast<double>(service.GroupCount());
    // Sum retained state over distinct DOEM databases.
    std::set<const DoemDatabase*> seen;
    for (int s = 0; s < subs; ++s) {
      const DoemDatabase* d = service.History("S" + std::to_string(s));
      if (d == nullptr || !seen.insert(d).second) continue;
      nodes += static_cast<double>(d->graph().node_count());
      arcs += static_cast<double>(d->graph().arc_count());
      annots += static_cast<double>(AnnotationIndex(*d).entry_count());
    }
    state.ResumeTiming();
  }
  state.counters["doem_groups"] = groups;
  state.counters["retained_nodes"] = nodes;
  state.counters["retained_arcs"] = arcs;
  state.counters["retained_annotations"] = annots;
}

void BM_FullHistoryMerged(benchmark::State& state) {
  qss::QssOptions opts;
  RunAndMeasure(state, opts, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_FullHistoryMerged)
    ->Arg(1)
    ->Arg(8)
    ->ArgNames({"subs"})
    ->Unit(benchmark::kMillisecond);

void BM_FullHistoryUnmerged(benchmark::State& state) {
  qss::QssOptions opts;
  opts.merge_similar_polls = false;
  RunAndMeasure(state, opts, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_FullHistoryUnmerged)
    ->Arg(1)
    ->Arg(8)
    ->ArgNames({"subs"})
    ->Unit(benchmark::kMillisecond);

void BM_TwoSnapshotRetention(benchmark::State& state) {
  qss::QssOptions opts;
  opts.retention = qss::HistoryRetention::kTwoSnapshots;
  RunAndMeasure(state, opts, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_TwoSnapshotRetention)
    ->Arg(1)
    ->Arg(8)
    ->ArgNames({"subs"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace doem

BENCHMARK_MAIN();
