// E2: snapshot reconstruction O_t(D) (Section 3.2) — cost as a function
// of database size, history length, and where t falls (original / middle
// / current). The paper claims all three are "easy to obtain"; this
// quantifies them.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace doem {
namespace {

Timestamp PickTime(const DoemDatabase& d, int which) {
  std::vector<Timestamp> times = d.AllTimestamps();
  if (times.empty()) return Timestamp(0);
  switch (which) {
    case 0:
      return Timestamp::NegativeInfinity();  // original snapshot
    case 1:
      return times[times.size() / 2];  // middle of history
    default:
      return Timestamp::PositiveInfinity();  // current snapshot
  }
}

void BM_SnapshotAt(benchmark::State& state) {
  const auto& w = bench::GuideWorkload(
      static_cast<size_t>(state.range(0)),
      static_cast<size_t>(state.range(1)), 10);
  Timestamp t = PickTime(w.doem, static_cast<int>(state.range(2)));
  size_t nodes = 0;
  for (auto _ : state) {
    OemDatabase snap = w.doem.SnapshotAt(t);
    nodes = snap.node_count();
    benchmark::DoNotOptimize(snap.root());
  }
  state.counters["snapshot_nodes"] = static_cast<double>(nodes);
  state.counters["annotations"] =
      static_cast<double>(w.doem.AllTimestamps().size());
}
BENCHMARK(BM_SnapshotAt)
    ->ArgsProduct({{100, 500, 2000}, {10, 50}, {0, 1, 2}})
    ->ArgNames({"restaurants", "steps", "when"})
    ->Unit(benchmark::kMillisecond);

// Liveness primitives: the per-arc / per-node checks snapshotting and
// plain-Lorel-over-DOEM traversal pay.
void BM_ValueAt(benchmark::State& state) {
  const auto& w = bench::GuideWorkload(500, 50, 10);
  std::vector<NodeId> nodes = w.doem.graph().NodeIds();
  Timestamp t = PickTime(w.doem, 1);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.doem.ValueAt(nodes[i], t));
    i = (i + 1) % nodes.size();
  }
}
BENCHMARK(BM_ValueAt);

void BM_LiveArcs(benchmark::State& state) {
  const auto& w = bench::GuideWorkload(500, 50, 10);
  std::vector<NodeId> nodes = w.doem.graph().NodeIds();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.doem.LiveArcs(nodes[i]));
    i = (i + 1) % nodes.size();
  }
}
BENCHMARK(BM_LiveArcs);

}  // namespace
}  // namespace doem

BENCHMARK_MAIN();
