#ifndef DOEM_BENCH_BENCH_COMMON_H_
#define DOEM_BENCH_BENCH_COMMON_H_

#include <cassert>
#include <map>
#include <tuple>

#include "doem/doem.h"
#include "testing/generators.h"

namespace doem {
namespace bench {

/// A prepared workload: a synthetic guide database of a given size, a
/// history over it, and the resulting DOEM database. Cached per
/// parameter tuple so repeated benchmark registrations don't rebuild it.
struct Workload {
  OemDatabase base;
  OemHistory history;
  DoemDatabase doem;
};

inline const Workload& GuideWorkload(size_t restaurants, size_t steps,
                                     size_t ops_per_step) {
  using Key = std::tuple<size_t, size_t, size_t>;
  static auto* cache = new std::map<Key, Workload>();
  Key key{restaurants, steps, ops_per_step};
  auto it = cache->find(key);
  if (it == cache->end()) {
    Workload w;
    w.base = testing::SyntheticGuide(restaurants);
    w.history = testing::SyntheticGuideHistory(w.base, steps, ops_per_step);
    auto d = DoemDatabase::Build(w.base, w.history);
    assert(d.ok());
    w.doem = std::move(d).value();
    it = cache->emplace(key, std::move(w)).first;
  }
  return it->second;
}

}  // namespace bench
}  // namespace doem

#endif  // DOEM_BENCH_BENCH_COMMON_H_
