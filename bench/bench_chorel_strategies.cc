// E5: the paper's two implementation strategies (Section 5): direct
// evaluation over the DOEM database vs. translation to Lorel over the OEM
// encoding — across query classes, with the encoding cost both included
// (cold) and excluded (warm, encoding cached as Lore would store it).

#include <benchmark/benchmark.h>

#include <cassert>
#include <optional>

#include "bench/bench_common.h"
#include "chorel/chorel.h"
#include "chorel/translate.h"
#include "doem/doem.h"
#include "lorel/lorel.h"
#include "oem/history.h"
#include "testing/generators.h"

namespace doem {
namespace {

const char* QueryForClass(int cls) {
  switch (cls) {
    case 0:  // plain path over the current snapshot
      return "select guide.restaurant.name";
    case 1:  // arc annotation
      return "select N from guide.<add at T>restaurant R, R.name N "
             "where T >= 10Jan97";
    case 2:  // node annotation with value filter
      return "select N, NV from guide.restaurant R, R.name N, "
             "R.price<upd at T to NV> where NV > 20";
    case 3:  // wildcard + like
      return "select R from guide.restaurant R "
             "where R.address.# like \"%Lytton%\"";
    default:  // removal history
      return "select N from guide.restaurant R, R.name N, "
             "R.<rem at T>parking P";
  }
}

void BM_ChorelDirect(benchmark::State& state) {
  const auto& w = bench::GuideWorkload(
      static_cast<size_t>(state.range(0)), 30, 10);
  chorel::ChorelEngine engine(w.doem);
  std::string q = QueryForClass(static_cast<int>(state.range(1)));
  size_t rows = 0;
  for (auto _ : state) {
    auto r = engine.Run(q, chorel::Strategy::kDirect);
    rows = r.ok() ? r->rows.size() : 0;
    benchmark::DoNotOptimize(r.ok());
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_ChorelDirect)
    ->ArgsProduct({{100, 500, 2000}, {0, 1, 2, 3, 4}})
    ->ArgNames({"restaurants", "class"})
    ->Unit(benchmark::kMicrosecond);

void BM_ChorelTranslatedWarm(benchmark::State& state) {
  const auto& w = bench::GuideWorkload(
      static_cast<size_t>(state.range(0)), 30, 10);
  chorel::ChorelEngine engine(w.doem);
  // Prime the encoding cache — the paper's deployment keeps the encoding
  // in Lore permanently.
  benchmark::DoNotOptimize(engine.Encoding().ok());
  std::string q = QueryForClass(static_cast<int>(state.range(1)));
  size_t rows = 0;
  for (auto _ : state) {
    auto r = engine.Run(q, chorel::Strategy::kTranslated);
    rows = r.ok() ? r->rows.size() : 0;
    benchmark::DoNotOptimize(r.ok());
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_ChorelTranslatedWarm)
    ->ArgsProduct({{100, 500, 2000}, {0, 1, 2, 3, 4}})
    ->ArgNames({"restaurants", "class"})
    ->Unit(benchmark::kMicrosecond);

void BM_ChorelTranslatedCold(benchmark::State& state) {
  const auto& w = bench::GuideWorkload(
      static_cast<size_t>(state.range(0)), 30, 10);
  std::string q = QueryForClass(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    chorel::ChorelEngine engine(w.doem);  // re-encodes every time
    auto r = engine.Run(q, chorel::Strategy::kTranslated);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_ChorelTranslatedCold)
    ->ArgsProduct({{100, 500}, {1}})
    ->ArgNames({"restaurants", "class"})
    ->Unit(benchmark::kMillisecond);

// DESIGN.md §6c: per-delta cost of keeping the translated strategy hot
// as history accumulates — ApplyDelta patching (incremental=1) vs drop
// and re-encode the whole history (incremental=0). Each iteration warms
// an engine over `history`-many churn steps, applies one more change
// set, then times cache maintenance plus one compiled translated run.
// (The DOEM change-set apply itself is identical in both configs and is
// kept out of the timed region.)
void BM_ChorelDeltaMaintenance(benchmark::State& state) {
  size_t steps = static_cast<size_t>(state.range(0));
  bool incremental = state.range(1) != 0;
  OemDatabase base = testing::SyntheticGuide(100);
  OemHistory script = testing::SyntheticGuideChurn(base, steps + 1, 8);
  const std::string query =
      "select guide.restaurant<cre at T> where T > 0";
  chorel::ChorelEngineOptions eopts;
  eopts.incremental = incremental;
  const HistoryStep& last = script.steps().back();
  // Setup state lives outside the loop so each iteration's teardown (the
  // history-sized DOEM database and encoding) runs in the paused region,
  // not inside the timed one.
  std::optional<DoemDatabase> d;
  std::optional<chorel::ChorelEngine> engine;
  std::optional<chorel::CompiledQuery> compiled;
  for (auto _ : state) {
    state.PauseTiming();
    engine.reset();
    d = *DoemDatabase::FromSnapshot(base);
    for (size_t i = 0; i + 1 < script.size(); ++i) {
      Status st = d->ApplyChangeSet(script.steps()[i].time,
                                    script.steps()[i].changes);
      assert(st.ok());
      (void)st;
    }
    engine.emplace(*d, eopts);
    benchmark::DoNotOptimize(engine->Encoding().ok());  // warm the cache
    compiled = *chorel::CompileChorel(query);
    Status st = d->ApplyChangeSet(last.time, last.changes);
    assert(st.ok());
    (void)st;
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        engine->ApplyDelta(last.time, last.changes).ok());
    auto r = engine->RunCompiled(&*compiled, chorel::Strategy::kTranslated);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_ChorelDeltaMaintenance)
    ->ArgsProduct({{8, 32, 128}, {0, 1}})
    ->ArgNames({"history", "incremental"})
    ->Unit(benchmark::kMicrosecond);

// The pure translation step (parse + normalize + rewrite), no evaluation.
void BM_TranslateOnly(benchmark::State& state) {
  std::string q = QueryForClass(static_cast<int>(state.range(0)));
  auto nq = lorel::ParseAndNormalize(q);
  for (auto _ : state) {
    auto t = chorel::TranslateToLorel(*nq);
    benchmark::DoNotOptimize(t.ok());
  }
}
BENCHMARK(BM_TranslateOnly)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace doem

BENCHMARK_MAIN();
