// E5: the paper's two implementation strategies (Section 5): direct
// evaluation over the DOEM database vs. translation to Lorel over the OEM
// encoding — across query classes, with the encoding cost both included
// (cold) and excluded (warm, encoding cached as Lore would store it).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "chorel/chorel.h"
#include "chorel/translate.h"
#include "lorel/lorel.h"

namespace doem {
namespace {

const char* QueryForClass(int cls) {
  switch (cls) {
    case 0:  // plain path over the current snapshot
      return "select guide.restaurant.name";
    case 1:  // arc annotation
      return "select N from guide.<add at T>restaurant R, R.name N "
             "where T >= 10Jan97";
    case 2:  // node annotation with value filter
      return "select N, NV from guide.restaurant R, R.name N, "
             "R.price<upd at T to NV> where NV > 20";
    case 3:  // wildcard + like
      return "select R from guide.restaurant R "
             "where R.address.# like \"%Lytton%\"";
    default:  // removal history
      return "select N from guide.restaurant R, R.name N, "
             "R.<rem at T>parking P";
  }
}

void BM_ChorelDirect(benchmark::State& state) {
  const auto& w = bench::GuideWorkload(
      static_cast<size_t>(state.range(0)), 30, 10);
  chorel::ChorelEngine engine(w.doem);
  std::string q = QueryForClass(static_cast<int>(state.range(1)));
  size_t rows = 0;
  for (auto _ : state) {
    auto r = engine.Run(q, chorel::Strategy::kDirect);
    rows = r.ok() ? r->rows.size() : 0;
    benchmark::DoNotOptimize(r.ok());
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_ChorelDirect)
    ->ArgsProduct({{100, 500, 2000}, {0, 1, 2, 3, 4}})
    ->ArgNames({"restaurants", "class"})
    ->Unit(benchmark::kMicrosecond);

void BM_ChorelTranslatedWarm(benchmark::State& state) {
  const auto& w = bench::GuideWorkload(
      static_cast<size_t>(state.range(0)), 30, 10);
  chorel::ChorelEngine engine(w.doem);
  // Prime the encoding cache — the paper's deployment keeps the encoding
  // in Lore permanently.
  benchmark::DoNotOptimize(engine.Encoding().ok());
  std::string q = QueryForClass(static_cast<int>(state.range(1)));
  size_t rows = 0;
  for (auto _ : state) {
    auto r = engine.Run(q, chorel::Strategy::kTranslated);
    rows = r.ok() ? r->rows.size() : 0;
    benchmark::DoNotOptimize(r.ok());
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_ChorelTranslatedWarm)
    ->ArgsProduct({{100, 500, 2000}, {0, 1, 2, 3, 4}})
    ->ArgNames({"restaurants", "class"})
    ->Unit(benchmark::kMicrosecond);

void BM_ChorelTranslatedCold(benchmark::State& state) {
  const auto& w = bench::GuideWorkload(
      static_cast<size_t>(state.range(0)), 30, 10);
  std::string q = QueryForClass(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    chorel::ChorelEngine engine(w.doem);  // re-encodes every time
    auto r = engine.Run(q, chorel::Strategy::kTranslated);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_ChorelTranslatedCold)
    ->ArgsProduct({{100, 500}, {1}})
    ->ArgNames({"restaurants", "class"})
    ->Unit(benchmark::kMillisecond);

// The pure translation step (parse + normalize + rewrite), no evaluation.
void BM_TranslateOnly(benchmark::State& state) {
  std::string q = QueryForClass(static_cast<int>(state.range(0)));
  auto nq = lorel::ParseAndNormalize(q);
  for (auto _ : state) {
    auto t = chorel::TranslateToLorel(*nq);
    benchmark::DoNotOptimize(t.ok());
  }
}
BENCHMARK(BM_TranslateOnly)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace doem

BENCHMARK_MAIN();
