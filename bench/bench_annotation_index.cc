// E10: annotation indexes (Section 7 future work) — answering
// "what changed in [t1, t2]?" by binary search over per-kind postings
// vs. scanning every node and arc, across database sizes and window
// widths. Also the index build cost QSS would pay per poll.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "doem/annotation_index.h"

namespace doem {
namespace {

Timestamp WindowStart(const DoemDatabase& d, double frac) {
  auto times = d.AllTimestamps();
  if (times.empty()) return Timestamp(0);
  size_t i = static_cast<size_t>(frac * (times.size() - 1));
  return times[i];
}

void BM_IndexedRangeProbe(benchmark::State& state) {
  const auto& w = bench::GuideWorkload(
      static_cast<size_t>(state.range(0)), 50, 10);
  AnnotationIndex index(w.doem);
  // A narrow "since the last poll" window near the end of the history.
  Timestamp from = WindowStart(w.doem, state.range(1) == 0 ? 0.95 : 0.0);
  Timestamp to = Timestamp::PositiveInfinity();
  size_t hits = 0;
  for (auto _ : state) {
    auto created = index.CreatedIn(from, to);
    auto added = index.AddedIn(from, to);
    hits = created.size() + added.size();
    benchmark::DoNotOptimize(hits);
  }
  state.counters["hits"] = static_cast<double>(hits);
  state.counters["index_entries"] =
      static_cast<double>(index.entry_count());
}
BENCHMARK(BM_IndexedRangeProbe)
    ->ArgsProduct({{100, 500, 2000}, {0, 1}})
    ->ArgNames({"restaurants", "wide"})
    ->Unit(benchmark::kMicrosecond);

void BM_ScanRangeProbe(benchmark::State& state) {
  const auto& w = bench::GuideWorkload(
      static_cast<size_t>(state.range(0)), 50, 10);
  Timestamp from = WindowStart(w.doem, state.range(1) == 0 ? 0.95 : 0.0);
  Timestamp to = Timestamp::PositiveInfinity();
  size_t hits = 0;
  for (auto _ : state) {
    auto created = ScanCreatedIn(w.doem, from, to);
    auto added = ScanAddedIn(w.doem, from, to);
    hits = created.size() + added.size();
    benchmark::DoNotOptimize(hits);
  }
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_ScanRangeProbe)
    ->ArgsProduct({{100, 500, 2000}, {0, 1}})
    ->ArgNames({"restaurants", "wide"})
    ->Unit(benchmark::kMicrosecond);

void BM_IndexBuild(benchmark::State& state) {
  const auto& w = bench::GuideWorkload(
      static_cast<size_t>(state.range(0)), 50, 10);
  for (auto _ : state) {
    AnnotationIndex index(w.doem);
    benchmark::DoNotOptimize(index.entry_count());
  }
}
BENCHMARK(BM_IndexBuild)
    ->Arg(100)
    ->Arg(500)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace doem

BENCHMARK_MAIN();
