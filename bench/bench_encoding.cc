// E4: the Section 5.1 DOEM-in-OEM encoding — encode/decode throughput and
// the size blow-up of representing annotations as &-labeled subobjects.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "encoding/encode.h"

namespace doem {
namespace {

void BM_Encode(benchmark::State& state) {
  const auto& w = bench::GuideWorkload(
      static_cast<size_t>(state.range(0)),
      static_cast<size_t>(state.range(1)), 10);
  size_t enc_nodes = 0, enc_arcs = 0;
  for (auto _ : state) {
    auto enc = EncodeDoem(w.doem);
    enc_nodes = enc->node_count();
    enc_arcs = enc->arc_count();
    benchmark::DoNotOptimize(enc.ok());
  }
  state.counters["doem_nodes"] =
      static_cast<double>(w.doem.graph().node_count());
  state.counters["doem_arcs"] =
      static_cast<double>(w.doem.graph().arc_count());
  state.counters["enc_nodes"] = static_cast<double>(enc_nodes);
  state.counters["enc_arcs"] = static_cast<double>(enc_arcs);
  state.counters["node_blowup"] =
      static_cast<double>(enc_nodes) / w.doem.graph().node_count();
  state.counters["arc_blowup"] =
      static_cast<double>(enc_arcs) / w.doem.graph().arc_count();
}
BENCHMARK(BM_Encode)
    ->ArgsProduct({{100, 500, 2000}, {10, 50}})
    ->Unit(benchmark::kMillisecond);

void BM_Decode(benchmark::State& state) {
  const auto& w = bench::GuideWorkload(
      static_cast<size_t>(state.range(0)),
      static_cast<size_t>(state.range(1)), 10);
  auto enc = EncodeDoem(w.doem);
  for (auto _ : state) {
    auto dec = DecodeDoem(*enc);
    benchmark::DoNotOptimize(dec.ok());
  }
}
BENCHMARK(BM_Decode)
    ->ArgsProduct({{100, 500, 2000}, {10, 50}})
    ->Unit(benchmark::kMillisecond);

void BM_RoundTrip(benchmark::State& state) {
  const auto& w = bench::GuideWorkload(500, 20, 10);
  for (auto _ : state) {
    auto enc = EncodeDoem(w.doem);
    auto dec = DecodeDoem(*enc);
    benchmark::DoNotOptimize(dec->Equals(w.doem));
  }
}
BENCHMARK(BM_RoundTrip)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace doem

BENCHMARK_MAIN();
