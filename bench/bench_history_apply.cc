// E1: history application throughput — the cost of building D(O, H)
// (Section 3.1's inductive construction) and, for comparison, of replaying
// the same history on a plain OEM database (GC'd per change set).
// Axes: database size (restaurants) x history length (steps).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace doem {
namespace {

void BM_DoemBuild(benchmark::State& state) {
  const auto& w = bench::GuideWorkload(
      static_cast<size_t>(state.range(0)),
      static_cast<size_t>(state.range(1)), /*ops_per_step=*/10);
  size_t total_ops = 0;
  for (const HistoryStep& s : w.history.steps()) {
    total_ops += s.changes.size();
  }
  for (auto _ : state) {
    auto d = DoemDatabase::Build(w.base, w.history);
    benchmark::DoNotOptimize(d.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(total_ops));
  state.counters["ops_per_history"] = static_cast<double>(total_ops);
  state.counters["base_nodes"] = static_cast<double>(w.base.node_count());
}
BENCHMARK(BM_DoemBuild)
    ->ArgsProduct({{100, 500, 2000}, {10, 50}})
    ->Unit(benchmark::kMillisecond);

void BM_PlainOemReplay(benchmark::State& state) {
  const auto& w = bench::GuideWorkload(
      static_cast<size_t>(state.range(0)),
      static_cast<size_t>(state.range(1)), 10);
  for (auto _ : state) {
    OemDatabase db = w.base;
    Status s = w.history.ApplyTo(&db);
    benchmark::DoNotOptimize(s.ok());
  }
  state.counters["base_nodes"] = static_cast<double>(w.base.node_count());
}
BENCHMARK(BM_PlainOemReplay)
    ->ArgsProduct({{100, 500, 2000}, {10, 50}})
    ->Unit(benchmark::kMillisecond);

// Incremental cost of one more change set on an existing DOEM database,
// as the QSS pays it at every poll.
void BM_DoemIncrementalStep(benchmark::State& state) {
  const auto& w = bench::GuideWorkload(
      static_cast<size_t>(state.range(0)), 20, 10);
  for (auto _ : state) {
    state.PauseTiming();
    DoemDatabase d = w.doem;
    // A realistic small set: one price update on some restaurant.
    ChangeSet ops;
    NodeId g = d.graph().Child(d.root(), "guide");
    for (NodeId r : d.graph().Children(g, "restaurant")) {
      NodeId price = kInvalidNode;
      for (const OutArc& a : d.LiveArcs(r)) {
        if (a.label == "price" && d.CurrentValue(a.child).is_atomic()) {
          price = a.child;
          break;
        }
      }
      if (price != kInvalidNode) {
        ops.push_back(ChangeOp::UpdNode(price, Value::Int(99)));
        break;
      }
    }
    Timestamp t(Timestamp::FromDate(1998, 1, 1).ticks);
    state.ResumeTiming();
    Status s = d.ApplyChangeSet(t, ops);
    benchmark::DoNotOptimize(s.ok());
  }
  state.counters["graph_nodes"] =
      static_cast<double>(w.doem.graph().node_count());
}
BENCHMARK(BM_DoemIncrementalStep)
    ->Arg(100)
    ->Arg(500)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace doem

BENCHMARK_MAIN();
