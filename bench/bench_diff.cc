// E7: OEMdiff cost — keyed vs. structural differencing as a function of
// snapshot size and change volume. Structural matching is the expensive
// CRGMW96-style step the paper's QSS pays when the wrapper has no
// persistent ids.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "diff/diff.h"
#include "oem/subgraph.h"

namespace doem {
namespace {

struct DiffInput {
  OemDatabase from;
  OemDatabase to_keyed;       // shared ids
  OemDatabase to_structural;  // fresh ids
};

const DiffInput& MakeInput(size_t restaurants, size_t edit_steps) {
  static auto* cache = new std::map<std::pair<size_t, size_t>, DiffInput>();
  auto key = std::make_pair(restaurants, edit_steps);
  auto it = cache->find(key);
  if (it == cache->end()) {
    DiffInput in;
    in.from = testing::SyntheticGuide(restaurants);
    in.to_keyed = in.from;
    OemHistory h =
        testing::SyntheticGuideHistory(in.from, edit_steps, 10);
    Status s = h.ApplyTo(&in.to_keyed);
    assert(s.ok());
    (void)s;
    in.to_structural.ReserveIdsBelow(in.to_keyed.PeekNextId() + 1000);
    auto map = CopyReachable(in.to_keyed, {in.to_keyed.root()},
                             &in.to_structural, false);
    assert(map.ok());
    Status rs = in.to_structural.SetRoot(map->at(in.to_keyed.root()));
    assert(rs.ok());
    (void)rs;
    it = cache->emplace(key, std::move(in)).first;
  }
  return it->second;
}

void BM_KeyedDiff(benchmark::State& state) {
  const DiffInput& in = MakeInput(static_cast<size_t>(state.range(0)),
                                  static_cast<size_t>(state.range(1)));
  size_t ops = 0;
  for (auto _ : state) {
    auto u = DiffSnapshots(in.from, in.to_keyed, DiffMode::kKeyed);
    ops = u.ok() ? u->size() : 0;
    benchmark::DoNotOptimize(u.ok());
  }
  state.counters["ops"] = static_cast<double>(ops);
  state.counters["from_nodes"] = static_cast<double>(in.from.node_count());
}
BENCHMARK(BM_KeyedDiff)
    ->ArgsProduct({{100, 500, 2000, 8000}, {2, 20}})
    ->ArgNames({"restaurants", "edit_steps"})
    ->Unit(benchmark::kMillisecond);

void BM_StructuralDiff(benchmark::State& state) {
  const DiffInput& in = MakeInput(static_cast<size_t>(state.range(0)),
                                  static_cast<size_t>(state.range(1)));
  size_t ops = 0;
  for (auto _ : state) {
    auto u = DiffSnapshots(in.from, in.to_structural,
                           DiffMode::kStructural);
    ops = u.ok() ? u->size() : 0;
    benchmark::DoNotOptimize(u.ok());
  }
  state.counters["ops"] = static_cast<double>(ops);
}
BENCHMARK(BM_StructuralDiff)
    ->ArgsProduct({{100, 500, 2000}, {2, 20}})
    ->ArgNames({"restaurants", "edit_steps"})
    ->Unit(benchmark::kMillisecond);

// The no-change fast path both modes hit at most polls.
void BM_DiffNoChanges(benchmark::State& state) {
  const DiffInput& in = MakeInput(static_cast<size_t>(state.range(0)), 2);
  DiffMode mode =
      state.range(1) == 0 ? DiffMode::kKeyed : DiffMode::kStructural;
  const OemDatabase& to =
      mode == DiffMode::kKeyed ? in.from : in.to_structural;
  // For structural, diff the structural copy against itself-equivalent.
  const OemDatabase& from = mode == DiffMode::kKeyed ? in.from : to;
  for (auto _ : state) {
    auto u = DiffSnapshots(from, to, mode);
    benchmark::DoNotOptimize(u.ok());
  }
}
BENCHMARK(BM_DiffNoChanges)
    ->ArgsProduct({{500, 2000}, {0, 1}})
    ->ArgNames({"restaurants", "structural"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace doem

BENCHMARK_MAIN();
