#!/usr/bin/env python3
"""Benchmark regression gate: compare two google-benchmark JSON captures.

    scripts/bench_compare.py BASELINE.json CURRENT.json [--threshold 0.15]

Matches benchmarks by name (aggregate entries like _mean/_median are
compared too when both sides have them) and fails — exit 1, one line per
offender — when CURRENT's real_time exceeds BASELINE's by more than the
threshold. Benchmarks present on only one side are reported but never
fail the gate, so adding or retiring benchmarks doesn't break CI.

Captures from different cmake_build_type contexts are refused outright:
comparing Debug against Release numbers would make the gate pure noise.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    entries = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate" and not b["name"].endswith("_mean"):
            continue  # one aggregate per family is enough for the gate
        entries[b["name"]] = b
    return doc.get("context", {}), entries


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max allowed fractional slowdown (default 0.15)")
    args = ap.parse_args()

    base_ctx, base = load(args.baseline)
    cur_ctx, cur = load(args.current)

    bt, ct = base_ctx.get("cmake_build_type"), cur_ctx.get("cmake_build_type")
    if bt != ct:
        print(f"error: build types differ (baseline={bt}, current={ct}); "
              "refusing to compare", file=sys.stderr)
        return 2

    regressions = []
    for name, b in sorted(base.items()):
        c = cur.get(name)
        if c is None:
            print(f"  note: {name} only in baseline")
            continue
        old, new = b.get("real_time"), c.get("real_time")
        if not old or not new:
            continue
        ratio = new / old
        marker = "REGRESSION" if ratio > 1 + args.threshold else "ok"
        print(f"  {marker:>10}  {name}  {old:.0f} -> {new:.0f} ns "
              f"({(ratio - 1) * 100:+.1f}%)")
        if ratio > 1 + args.threshold:
            regressions.append((name, ratio))
    for name in sorted(set(cur) - set(base)):
        print(f"  note: {name} only in current")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold * 100:.0f}%:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {(ratio - 1) * 100:+.1f}%", file=sys.stderr)
        return 1
    print("\nno regressions beyond "
          f"{args.threshold * 100:.0f}% ({len(base)} baseline entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
