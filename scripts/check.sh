#!/usr/bin/env bash
# Repo verification driver.
#
#   scripts/check.sh            # tier-1: default build + full ctest
#   scripts/check.sh tsan       # DOEM_TSAN build + `ctest -L "qss|perf|obs|store|vm|server"`
#                               # (races the parallel poll engine, the
#                               # incremental query caches, the
#                               # metrics/trace instruments, and the
#                               # durable-store commit path under
#                               # ThreadSanitizer)
#   scripts/check.sh asan       # DOEM_SANITIZE build + full ctest
#                               # (includes the `store` crash/corruption
#                               # matrices and the parser adversarial
#                               # corpus under ASan/UBSan)
#   scripts/check.sh all        # tier-1, then tsan, then asan
#   scripts/check.sh bench      # opt-in regression gate: Release build
#                               # (build-bench/), fresh benchmark capture,
#                               # compared against the committed BENCH_*.json
#                               # baselines; fails on any >15% slowdown.
#                               # Not part of `all` — timing needs a quiet
#                               # machine.
#
# Each mode uses its own build tree (build/, build-tsan/, build-asan/),
# all ignored by git.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)

tier1() {
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs"
  ctest --test-dir build --output-on-failure -j "$jobs"
}

tsan() {
  cmake -B build-tsan -S . -DDOEM_TSAN=ON >/dev/null
  cmake --build build-tsan -j "$jobs"
  # TSAN_OPTIONS makes any detected race fail the test run loudly.
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan -L "qss|perf|obs|store|vm|server" --output-on-failure -j "$jobs"
}

asan() {
  cmake -B build-asan -S . -DDOEM_SANITIZE=ON >/dev/null
  cmake --build build-asan -j "$jobs"
  # The deep-recursion serialization tests need a larger stack under
  # ASan's widened frames (see README).
  ulimit -s 65536 || true
  ctest --test-dir build-asan --output-on-failure -j "$jobs"
}

bench() {
  cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  compare_args=()
  for baseline in BENCH_*.json; do
    [ -f "$baseline" ] && compare_args+=(--compare "$baseline")
  done
  if [ "${#compare_args[@]}" -eq 0 ]; then
    echo "error: no committed BENCH_*.json baselines to compare against" >&2
    echo "(capture one with scripts/bench.sh build-bench)" >&2
    exit 2
  fi
  scripts/bench.sh build-bench "${compare_args[@]}"
}

mode="${1:-tier1}"
case "$mode" in
  tier1) tier1 ;;
  tsan) tsan ;;
  asan) asan ;;
  all) tier1 && tsan && asan ;;
  bench) bench ;;
  *)
    echo "usage: $0 [tier1|tsan|asan|all|bench]" >&2
    exit 2
    ;;
esac
