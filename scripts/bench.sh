#!/usr/bin/env bash
# Benchmark capture driver (DESIGN.md §6c, §6e, §6f).
#
#   scripts/bench.sh [build-dir] [--allow-debug]    # default: build
#   scripts/bench.sh [build-dir] --compare BENCH_x.json [--compare ...]
#
# Runs the history-length sweeps — per-poll QSS filter cost and
# engine-level per-delta maintenance cost, incremental vs rebuild — plus
# the durability-layer sweeps and the bytecode-VM dispatch sweeps, and
# writes google-benchmark JSON next to the repo root:
#
#   BENCH_qss_incremental.json     BM_QssHistorySweep
#   BENCH_chorel_incremental.json  BM_ChorelDeltaMaintenance
#   BENCH_obs_overhead.json        BM_QssObsOverhead + instrument microcosts
#   BENCH_store_recovery.json      BM_StoreAppend / BM_StoreCheckpoint /
#                                  BM_StoreRecovery
#   BENCH_vm_dispatch.json         BM_VmPathLength / BM_VmChorelFilter /
#                                  BM_VmDirectSeeded
#   BENCH_qss_fanout.json          BM_QssFanOut (layered poll-group fan-out,
#                                  up to 1M filters / 100 groups) +
#                                  BM_QssFanOutTwinCheck
#
# With --compare, captures go to a temporary directory instead of the
# repo root and each named baseline is diffed against the fresh capture
# with the same basename via scripts/bench_compare.py; the script exits
# nonzero if any benchmark slowed by more than 15% (the regression
# gate — `scripts/check.sh bench` runs it against the committed
# baselines).
#
# The claims to check in the output: with incremental:1 the per-poll
# counters stay flat as `history` grows; with incremental:0 they grow,
# and at history:128 the incremental filter cost is >= 10x cheaper. In
# BENCH_obs_overhead.json, obs:1 and obs:2 stay within ~5% of obs:0
# (DESIGN.md §6d overhead budget). In BENCH_store_recovery.json,
# append cost is flat in history length and log_bytes shrinks as the
# checkpoint interval grows.
#
# Numbers from unoptimized builds are not comparable: the script reads
# CMAKE_BUILD_TYPE from the build tree's actual CMakeCache.txt, records
# it as `cmake_build_type` in every capture's context block, and refuses
# to write BENCH_*.json from a non-Release-like build unless
# --allow-debug is given. (google-benchmark's own `library_build_type`
# context field only describes how the *benchmark library* was built,
# which is how Debug captures used to slip through.)
set -euo pipefail
cd "$(dirname "$0")/.."

build="build"
allow_debug=0
baselines=()
expect_baseline=0
for arg in "$@"; do
  if [ "$expect_baseline" -eq 1 ]; then
    baselines+=("$arg")
    expect_baseline=0
    continue
  fi
  case "$arg" in
    --allow-debug) allow_debug=1 ;;
    --compare) expect_baseline=1 ;;
    -*)
      echo "usage: $0 [build-dir] [--allow-debug] [--compare BENCH_x.json]..." >&2
      exit 2
      ;;
    *) build="$arg" ;;
  esac
done
if [ "$expect_baseline" -eq 1 ]; then
  echo "error: --compare needs a baseline JSON argument" >&2
  exit 2
fi
jobs=$(nproc 2>/dev/null || echo 2)

# Where captures land: the repo root normally, a scratch dir in compare
# mode so the committed baselines are never clobbered by the run that is
# checked against them.
outdir="."
if [ "${#baselines[@]}" -gt 0 ]; then
  outdir=$(mktemp -d)
fi

cmake -B "$build" -S . >/dev/null

# The authoritative build type is the configured cache, not what the
# caller believes they configured.
build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build/CMakeCache.txt" | head -1)
case "$build_type" in
  Release|RelWithDebInfo|MinSizeRel) ;;
  *)
    if [ "$allow_debug" -ne 1 ]; then
      cat >&2 <<EOF
error: build tree '$build' has CMAKE_BUILD_TYPE='${build_type:-<empty>}'.
Benchmark captures from unoptimized builds are misleading; configure a
release tree first:

    cmake -B "$build" -S . -DCMAKE_BUILD_TYPE=Release

or pass --allow-debug to capture anyway (the JSON will be tagged
cmake_build_type="${build_type:-<empty>}" so it cannot be mistaken for a
release capture).
EOF
      exit 1
    fi
    echo "warning: capturing from CMAKE_BUILD_TYPE='${build_type:-<empty>}' (--allow-debug)" >&2
    ;;
esac

cmake --build "$build" -j "$jobs" --target \
  bench_qss_cycle bench_chorel_strategies bench_obs_overhead \
  bench_store_recovery bench_vm_dispatch bench_qss_fanout

# Stamps the cache-derived build type into the capture's context block so
# downstream consumers can reject or flag non-release data.
annotate() {
  sed -i "0,/\"context\": {/s//\"context\": {\n    \"cmake_build_type\": \"${build_type:-unknown}\",/" "$1"
}

"$build"/bench/bench_qss_cycle \
  --benchmark_filter='BM_QssHistorySweep' \
  --benchmark_out="$outdir"/BENCH_qss_incremental.json \
  --benchmark_out_format=json
annotate "$outdir"/BENCH_qss_incremental.json

"$build"/bench/bench_chorel_strategies \
  --benchmark_filter='BM_ChorelDeltaMaintenance' \
  --benchmark_out="$outdir"/BENCH_chorel_incremental.json \
  --benchmark_out_format=json
annotate "$outdir"/BENCH_chorel_incremental.json

"$build"/bench/bench_obs_overhead \
  --benchmark_out="$outdir"/BENCH_obs_overhead.json \
  --benchmark_out_format=json
annotate "$outdir"/BENCH_obs_overhead.json

"$build"/bench/bench_store_recovery \
  --benchmark_out="$outdir"/BENCH_store_recovery.json \
  --benchmark_out_format=json
annotate "$outdir"/BENCH_store_recovery.json

"$build"/bench/bench_vm_dispatch \
  --benchmark_out="$outdir"/BENCH_vm_dispatch.json \
  --benchmark_out_format=json
annotate "$outdir"/BENCH_vm_dispatch.json

"$build"/bench/bench_qss_fanout \
  --benchmark_out="$outdir"/BENCH_qss_fanout.json \
  --benchmark_out_format=json
annotate "$outdir"/BENCH_qss_fanout.json

echo "wrote BENCH_qss_incremental.json, BENCH_chorel_incremental.json," \
     "BENCH_obs_overhead.json, BENCH_store_recovery.json," \
     "BENCH_vm_dispatch.json, and BENCH_qss_fanout.json to $outdir" \
     "(cmake_build_type=$build_type)"

if [ "${#baselines[@]}" -gt 0 ]; then
  failed=0
  for baseline in "${baselines[@]}"; do
    fresh="$outdir/$(basename "$baseline")"
    if [ ! -f "$fresh" ]; then
      echo "error: no fresh capture matching baseline '$baseline'" >&2
      failed=1
      continue
    fi
    echo
    echo "== $(basename "$baseline"): committed baseline vs this run =="
    if ! python3 scripts/bench_compare.py "$baseline" "$fresh"; then
      failed=1
    fi
  done
  exit "$failed"
fi
