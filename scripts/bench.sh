#!/usr/bin/env bash
# Incremental-maintenance benchmark driver (DESIGN.md §6c).
#
#   scripts/bench.sh [build-dir]    # default: build
#
# Runs the history-length sweeps — per-poll QSS filter cost and
# engine-level per-delta maintenance cost, incremental vs rebuild — and
# writes google-benchmark JSON next to the repo root:
#
#   BENCH_qss_incremental.json     BM_QssHistorySweep
#   BENCH_chorel_incremental.json  BM_ChorelDeltaMaintenance
#   BENCH_obs_overhead.json        BM_QssObsOverhead + instrument microcosts
#
# The claims to check in the output: with incremental:1 the per-poll
# counters stay flat as `history` grows; with incremental:0 they grow,
# and at history:128 the incremental filter cost is >= 10x cheaper. In
# BENCH_obs_overhead.json, obs:1 and obs:2 stay within ~5% of obs:0
# (DESIGN.md §6d overhead budget).
set -euo pipefail
cd "$(dirname "$0")/.."

build="${1:-build}"
jobs=$(nproc 2>/dev/null || echo 2)

cmake -B "$build" -S . >/dev/null
cmake --build "$build" -j "$jobs" --target bench_qss_cycle bench_chorel_strategies bench_obs_overhead

"$build"/bench/bench_qss_cycle \
  --benchmark_filter='BM_QssHistorySweep' \
  --benchmark_out=BENCH_qss_incremental.json \
  --benchmark_out_format=json

"$build"/bench/bench_chorel_strategies \
  --benchmark_filter='BM_ChorelDeltaMaintenance' \
  --benchmark_out=BENCH_chorel_incremental.json \
  --benchmark_out_format=json

"$build"/bench/bench_obs_overhead \
  --benchmark_out=BENCH_obs_overhead.json \
  --benchmark_out_format=json

echo "wrote BENCH_qss_incremental.json, BENCH_chorel_incremental.json," \
     "and BENCH_obs_overhead.json"
