#!/usr/bin/env bash
# Incremental-maintenance benchmark driver (DESIGN.md §6c).
#
#   scripts/bench.sh [build-dir]    # default: build
#
# Runs the history-length sweeps — per-poll QSS filter cost and
# engine-level per-delta maintenance cost, incremental vs rebuild — and
# writes google-benchmark JSON next to the repo root:
#
#   BENCH_qss_incremental.json     BM_QssHistorySweep
#   BENCH_chorel_incremental.json  BM_ChorelDeltaMaintenance
#
# The claim to check in the output: with incremental:1 the per-poll
# counters stay flat as `history` grows; with incremental:0 they grow,
# and at history:128 the incremental filter cost is >= 10x cheaper.
set -euo pipefail
cd "$(dirname "$0")/.."

build="${1:-build}"
jobs=$(nproc 2>/dev/null || echo 2)

cmake -B "$build" -S . >/dev/null
cmake --build "$build" -j "$jobs" --target bench_qss_cycle bench_chorel_strategies

"$build"/bench/bench_qss_cycle \
  --benchmark_filter='BM_QssHistorySweep' \
  --benchmark_out=BENCH_qss_incremental.json \
  --benchmark_out_format=json

"$build"/bench/bench_chorel_strategies \
  --benchmark_filter='BM_ChorelDeltaMaintenance' \
  --benchmark_out=BENCH_chorel_incremental.json \
  --benchmark_out_format=json

echo "wrote BENCH_qss_incremental.json and BENCH_chorel_incremental.json"
