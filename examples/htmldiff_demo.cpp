// htmldiff (paper Section 1.1, Figure 1): diff two versions of the
// restaurant-guide web page, emit a marked-up copy highlighting the
// changes, and then query the changes instead of browsing them.

#include <cstdio>

#include "chorel/chorel.h"
#include "htmldiff/htmldiff.h"

using namespace doem;

int main() {
  const char* old_page = R"(
<html><body>
<h1>Palo Alto Weekly Restaurant Guide</h1>
<ul>
  <li><b>Bangkok Cuisine</b> <i>price:</i> <span>10</span>
      <p>120 Lytton</p></li>
  <li><b>Janta</b> <i>price:</i> <span>moderate</span>
      <p>Lytton at Palo Alto</p>
      <em>parking: Lytton lot 2</em></li>
</ul>
</body></html>)";

  const char* new_page = R"(
<html><body>
<h1>Palo Alto Weekly Restaurant Guide</h1>
<ul>
  <li><b>Bangkok Cuisine</b> <i>price:</i> <span>20</span>
      <p>120 Lytton</p></li>
  <li><b>Janta</b> <i>price:</i> <span>moderate</span>
      <p>Lytton at Palo Alto</p></li>
  <li><b>Hakata</b> <p>need info</p></li>
</ul>
</body></html>)";

  auto diff = htmldiff::HtmlDiff(old_page, new_page);
  if (!diff.ok()) {
    std::printf("htmldiff failed: %s\n", diff.status().ToString().c_str());
    return 1;
  }
  std::printf("== marked-up page (Figure 1 analogue) ==\n%s\n\n",
              diff->markup.c_str());
  std::printf("== change summary ==\n%s\n\n",
              diff->stats.ToString().c_str());

  // "As documents get larger ... one soon feels the need to use queries
  // to directly find changes of interest instead of simply browsing."
  chorel::ChorelEngine engine(diff->doem);
  struct {
    const char* what;
    const char* query;
  } queries[] = {
      {"new list entries",
       "select html.body.ul.<add>li"},
      {"updated text anywhere, with old and new value",
       "select OV, NV from html.#.text<upd from OV to NV>"},
      {"entries that lost a subobject",
       "select L from html.body.ul.li L, L.<rem>em E"},
  };
  for (const auto& q : queries) {
    auto r = engine.Run(q.query, chorel::Strategy::kDirect);
    if (!r.ok()) {
      std::printf("%-45s -> error: %s\n", q.what,
                  r.status().ToString().c_str());
      continue;
    }
    std::printf("%-45s -> %zu result(s)\n", q.what, r->rows.size());
  }
  return 0;
}
