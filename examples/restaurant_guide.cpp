// A deeper tour of DOEM on a scaled-up restaurant guide: time travel,
// history extraction, feasibility, the OEM encoding, and the two Chorel
// evaluation strategies on a database with hundreds of objects.

#include <cstdio>

#include "chorel/chorel.h"
#include "doem/doem.h"
#include "encoding/encode.h"
#include "testing/generators.h"

using namespace doem;

int main() {
  // A synthetic Palo Alto Weekly guide: 200 restaurants with the paper's
  // irregularities (int vs string prices, string vs complex addresses,
  // shared parking objects, nearby-eats cycles).
  OemDatabase guide = testing::SyntheticGuide(200);
  OemHistory history = testing::SyntheticGuideHistory(guide, /*steps=*/30,
                                                      /*ops_per_step=*/10);
  std::printf("guide: %zu objects, %zu arcs; history: %zu days of edits\n",
              guide.node_count(), guide.arc_count(), history.size());

  auto doem = DoemDatabase::Build(guide, history);
  if (!doem.ok()) {
    std::printf("error: %s\n", doem.status().ToString().c_str());
    return 1;
  }

  // Time travel (Section 3.2): the guide as of three specific days.
  for (int day : {0, 15, 29}) {
    Timestamp t(Timestamp::FromDate(1997, 1, 1).ticks + day);
    OemDatabase snap = doem->SnapshotAt(t);
    std::printf("snapshot at %-9s: %4zu objects, %4zu arcs\n",
                t.ToString().c_str(), snap.node_count(), snap.arc_count());
  }

  // The DOEM database faithfully captures the history (Section 3.2).
  OemHistory extracted = doem->ExtractHistory();
  std::printf("extracted history: %zu steps (feasible: %s)\n",
              extracted.size(), doem->IsFeasible() ? "yes" : "no");

  // The Section 5.1 encoding and its size cost.
  auto enc = EncodeDoem(*doem);
  if (!enc.ok()) {
    std::printf("encode error: %s\n", enc.status().ToString().c_str());
    return 1;
  }
  std::printf("encoding: %zu -> %zu nodes, %zu -> %zu arcs\n",
              doem->graph().node_count(), enc->node_count(),
              doem->graph().arc_count(), enc->arc_count());

  // Change queries with both strategies.
  chorel::ChorelEngine engine(*doem);
  const char* queries[] = {
      // New restaurants in the second half of January.
      "select N from guide.<add at T>restaurant R, R.name N "
      "where T >= 15Jan97",
      // Price increases (old and new value).
      "select N, OV, NV from guide.restaurant R, R.name N, "
      "R.price<upd from OV to NV> where NV > OV",
      // Restaurants that lost their parking.
      "select N from guide.restaurant R, R.name N, R.<rem at T>parking P",
      // Anything near Lytton that changed comments recently.
      "select C from guide.restaurant R, R.comment<cre at T> C "
      "where R.address.# like \"%Lytton%\" and T >= 20Jan97",
  };
  for (const char* q : queries) {
    auto direct = engine.Run(q, chorel::Strategy::kDirect);
    auto translated = engine.Run(q, chorel::Strategy::kTranslated);
    if (!direct.ok() || !translated.ok()) {
      std::printf("query error: %s\n",
                  (!direct.ok() ? direct : translated)
                      .status()
                      .ToString()
                      .c_str());
      continue;
    }
    std::printf("%3zu direct / %3zu translated rows  <-  %.60s...\n",
                direct->rows.size(), translated->rows.size(), q);
  }

  // Virtual annotations (Section 4.2.2): what did restaurant prices look
  // like mid-month? Direct strategy only.
  auto vintage = engine.Run(
      "select N from guide.restaurant R, R.name N "
      "where R.price<at 15Jan97> > 30",
      chorel::Strategy::kDirect);
  if (vintage.ok()) {
    std::printf("%zu restaurants were expensive (price > 30) on 15Jan97\n",
                vintage->rows.size());
  }
  return 0;
}
