// Quickstart: the paper's running example end to end.
//
// Builds the Figure 2 restaurant guide, applies the Example 2.2 changes,
// and runs the paper's Chorel queries (Examples 4.1-4.4) over the
// resulting DOEM database — with both implementation strategies.

#include <cstdio>

#include "chorel/chorel.h"
#include "doem/doem.h"
#include "oem/oem_text.h"
#include "testing/guide.h"

using namespace doem;

namespace {

void RunAndPrint(chorel::ChorelEngine& engine, const char* title,
                 const std::string& query) {
  std::printf("-- %s\n   %s\n", title, query.c_str());
  auto r = engine.Run(query, chorel::Strategy::kDirect);
  if (!r.ok()) {
    std::printf("   error: %s\n\n", r.status().ToString().c_str());
    return;
  }
  std::printf("%s", WriteOemText(r->answer).c_str());
  std::printf("   (%zu row(s))\n\n", r->rows.size());
}

}  // namespace

int main() {
  // 1. The Figure 2 database.
  testing::Guide guide = testing::BuildGuide();
  std::printf("== The Guide database (Figure 2) ==\n%s\n",
              WriteOemText(guide.db).c_str());

  // 2. The Example 2.2 modifications as an OEM history, turned into a
  //    DOEM database (Figure 4).
  auto doem = DoemDatabase::Build(guide.db, testing::GuideHistory());
  if (!doem.ok()) {
    std::printf("failed to build DOEM: %s\n",
                doem.status().ToString().c_str());
    return 1;
  }
  std::printf("== The DOEM database (Figure 4) ==\n%s\n",
              doem->ToString().c_str());

  // 3. Chorel queries.
  chorel::ChorelEngine engine(*doem);
  RunAndPrint(engine, "Example 4.1: plain Lorel over the current snapshot",
              "select guide.restaurant where guide.restaurant.price < 20.5");
  RunAndPrint(engine, "Example 4.2: all newly added restaurant entries",
              "select guide.<add>restaurant");
  RunAndPrint(engine, "Example 4.3: entries added before January 4, 1997",
              "select guide.<add at T>restaurant where T < 4Jan97");
  RunAndPrint(engine,
              "Example 4.4: price updates to more than 15 since Jan 1",
              "select N, T, NV from guide.restaurant.price<upd at T to NV>, "
              "guide.restaurant.name N where T >= 1Jan97 and NV > 15");
  RunAndPrint(engine, "Removed parking arcs (rem annotations)",
              "select R from guide.restaurant R, R.<rem at T>parking P");

  // 4. The same query through the paper's layered implementation:
  //    encode DOEM in OEM (Section 5.1), translate Chorel to Lorel
  //    (Section 5.2).
  auto translated = engine.Run("select guide.<add>restaurant",
                               chorel::Strategy::kTranslated);
  std::printf("-- Example 4.2 via encode+translate: %zu row(s), "
              "same objects as direct evaluation\n",
              translated.ok() ? translated->rows.size() : 0);
  return 0;
}
