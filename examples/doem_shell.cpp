// doem_shell: an interactive (or scripted) command shell over the
// library — load/save OEM text databases, stage basic change operations,
// commit them as timestamped change sets, time-travel, and run Chorel
// queries with either evaluation strategy.
//
// Usage:  doem_shell [script-file]     (no argument: read stdin)
//
// Commands (one per line; '#' starts a comment):
//   load <file>          load an OEM text database (becomes history base)
//   load doem <file>     load a persisted DOEM database (with history)
//   save <file>          write the current snapshot as OEM text
//   save doem <file>     persist the DOEM database (Section 5.1 encoding)
//   show                 print the current snapshot
//   show at <time>       print the snapshot at a time (e.g. 5Jan97)
//   show doem            print the annotated graph
//   cre <id> <value>     stage creNode   (value: 42, 3.5, "s", true, C)
//   upd <id> <value>     stage updNode
//   add <p> <label> <c>  stage addArc
//   rem <p> <label> <c>  stage remArc
//   pending              list staged operations
//   commit <time>        apply staged operations at <time>
//   update <time> <stmt> run a high-level update (insert/set/remove ...)
//   query <chorel>       run a query (direct strategy)
//   tquery <chorel>      run a query (translated strategy)
//   history              print the extracted history
//   save history <file>  write the history as a replayable edit script
//   replay <file>        apply an edit script (@<time> + cre/upd/add/rem)
//   help                 this text
//   quit

#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "chorel/chorel.h"
#include "chorel/update.h"
#include "common/strings.h"
#include "doem/doem.h"
#include "encoding/doem_text.h"
#include "oem/history_text.h"
#include "oem/oem_text.h"

using namespace doem;

namespace {

class Shell {
 public:
  // Returns false when the session should end.
  bool Handle(const std::string& raw) {
    std::string line(StripWhitespace(raw));
    if (line.empty() || line[0] == '#') return true;
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    std::string rest;
    std::getline(in, rest);
    rest = std::string(StripWhitespace(rest));

    if (cmd == "quit" || cmd == "exit") return false;
    Status s = Dispatch(cmd, rest);
    if (!s.ok()) {
      std::printf("error: %s\n", s.ToString().c_str());
      ++errors_;
    }
    return true;
  }

  int errors() const { return errors_; }

 private:
  Status Dispatch(const std::string& cmd, const std::string& rest) {
    if (cmd == "help") {
      std::printf(
          "commands: load save show cre upd add rem pending commit "
          "query tquery history quit\n");
      return Status::OK();
    }
    if (cmd == "load") return Load(rest);
    if (cmd == "save") return Save(rest);
    if (cmd == "show") return Show(rest);
    if (cmd == "cre" || cmd == "upd") return StageNodeOp(cmd, rest);
    if (cmd == "add" || cmd == "rem") return StageArcOp(cmd, rest);
    if (cmd == "pending") {
      std::printf("%s\n", ChangeSetToString(pending_).c_str());
      return Status::OK();
    }
    if (cmd == "commit") return Commit(rest);
    if (cmd == "update") return Update(rest);
    if (cmd == "replay") return Replay(rest);
    if (cmd == "query") return RunQuery(rest, chorel::Strategy::kDirect);
    if (cmd == "tquery") {
      return RunQuery(rest, chorel::Strategy::kTranslated);
    }
    if (cmd == "history") {
      DOEM_RETURN_IF_ERROR(RequireDb());
      std::printf("%s", doem_->ExtractHistory().ToString().c_str());
      return Status::OK();
    }
    return Status::InvalidArgument("unknown command '" + cmd +
                                   "' (try help)");
  }

  Status RequireDb() {
    if (!doem_.has_value()) {
      return Status::InvalidArgument("no database loaded (use: load <file>)");
    }
    return Status::OK();
  }

  Status Load(const std::string& arg) {
    bool as_doem = arg.rfind("doem ", 0) == 0;
    std::string path = as_doem ? std::string(StripWhitespace(arg.substr(5)))
                               : arg;
    std::ifstream f(path);
    if (!f) return Status::NotFound("cannot open '" + path + "'");
    std::stringstream buf;
    buf << f.rdbuf();
    if (as_doem) {
      auto d = ParseDoemText(buf.str());
      if (!d.ok()) return d.status();
      doem_ = std::move(d).value();
    } else {
      auto db = ParseOemText(buf.str());
      if (!db.ok()) return db.status();
      auto d = DoemDatabase::FromSnapshot(std::move(db).value());
      if (!d.ok()) return d.status();
      doem_ = std::move(d).value();
    }
    pending_.clear();
    std::printf("loaded %zu objects, %zu arcs\n",
                doem_->graph().node_count(), doem_->graph().arc_count());
    return Status::OK();
  }

  Status Save(const std::string& arg) {
    DOEM_RETURN_IF_ERROR(RequireDb());
    if (arg.rfind("history ", 0) == 0) {
      std::string path(StripWhitespace(arg.substr(8)));
      std::ofstream f(path);
      if (!f) return Status::InvalidArgument("cannot write '" + path + "'");
      f << WriteHistoryText(doem_->ExtractHistory());
      std::printf("saved %s\n", path.c_str());
      return Status::OK();
    }
    bool as_doem = arg.rfind("doem ", 0) == 0;
    std::string path = as_doem ? std::string(StripWhitespace(arg.substr(5)))
                               : arg;
    std::ofstream f(path);
    if (!f) return Status::InvalidArgument("cannot write '" + path + "'");
    f << (as_doem ? WriteDoemText(*doem_)
                  : WriteOemText(doem_->CurrentSnapshot()));
    std::printf("saved %s\n", path.c_str());
    return Status::OK();
  }

  Status Show(const std::string& what) {
    DOEM_RETURN_IF_ERROR(RequireDb());
    if (what == "doem") {
      std::printf("%s", doem_->ToString().c_str());
      return Status::OK();
    }
    if (what.rfind("at ", 0) == 0) {
      Timestamp t;
      if (!Timestamp::Parse(what.substr(3), &t)) {
        return Status::ParseError("bad time '" + what.substr(3) + "'");
      }
      std::printf("%s", WriteOemText(doem_->SnapshotAt(t)).c_str());
      return Status::OK();
    }
    if (!what.empty()) {
      return Status::InvalidArgument("usage: show | show at <t> | show doem");
    }
    std::printf("%s", WriteOemText(doem_->CurrentSnapshot()).c_str());
    return Status::OK();
  }

  static Status ParseValueToken(const std::string& text, Value* out) {
    std::string t(StripWhitespace(text));
    if (t.empty()) return Status::ParseError("missing value");
    if (t == "C") {
      *out = Value::Complex();
      return Status::OK();
    }
    // Reuse the OEM text parser by parsing a one-node database.
    auto db = ParseOemText("&1 { v: &2 " + t + " }");
    if (!db.ok()) return Status::ParseError("bad value '" + t + "'");
    *out = *db->GetValue(2);
    return Status::OK();
  }

  Status StageNodeOp(const std::string& cmd, const std::string& rest) {
    DOEM_RETURN_IF_ERROR(RequireDb());
    std::istringstream in(rest);
    NodeId id = 0;
    in >> id;
    if (id == 0) return Status::ParseError("usage: " + cmd + " <id> <value>");
    std::string value_text;
    std::getline(in, value_text);
    Value v;
    DOEM_RETURN_IF_ERROR(ParseValueToken(value_text, &v));
    pending_.push_back(cmd == "cre" ? ChangeOp::CreNode(id, v)
                                    : ChangeOp::UpdNode(id, v));
    return Status::OK();
  }

  Status StageArcOp(const std::string& cmd, const std::string& rest) {
    DOEM_RETURN_IF_ERROR(RequireDb());
    std::istringstream in(rest);
    NodeId p = 0, c = 0;
    std::string label;
    in >> p >> label >> c;
    if (p == 0 || c == 0 || label.empty()) {
      return Status::ParseError("usage: " + cmd + " <parent> <label> <child>");
    }
    pending_.push_back(cmd == "add" ? ChangeOp::AddArc(p, label, c)
                                    : ChangeOp::RemArc(p, label, c));
    return Status::OK();
  }

  Status Commit(const std::string& rest) {
    DOEM_RETURN_IF_ERROR(RequireDb());
    Timestamp t;
    if (!Timestamp::Parse(rest, &t)) {
      return Status::ParseError("usage: commit <time>");
    }
    DOEM_RETURN_IF_ERROR(doem_->ApplyChangeSet(t, pending_));
    std::printf("committed %zu operation(s) at %s\n", pending_.size(),
                t.ToString().c_str());
    pending_.clear();
    return Status::OK();
  }

  Status Replay(const std::string& path) {
    DOEM_RETURN_IF_ERROR(RequireDb());
    std::ifstream f(path);
    if (!f) return Status::NotFound("cannot open '" + path + "'");
    std::stringstream buf;
    buf << f.rdbuf();
    auto h = ParseHistoryText(buf.str());
    if (!h.ok()) return h.status();
    DOEM_RETURN_IF_ERROR(doem_->ApplyHistory(*h));
    std::printf("replayed %zu change set(s)\n", h->size());
    return Status::OK();
  }

  Status Update(const std::string& rest) {
    DOEM_RETURN_IF_ERROR(RequireDb());
    std::istringstream in(rest);
    std::string time_text;
    in >> time_text;
    Timestamp t;
    if (!Timestamp::Parse(time_text, &t)) {
      return Status::ParseError("usage: update <time> <statement>");
    }
    std::string stmt;
    std::getline(in, stmt);
    auto ops = chorel::CompileUpdate(*doem_, std::string(
        StripWhitespace(stmt)));
    if (!ops.ok()) return ops.status();
    DOEM_RETURN_IF_ERROR(doem_->ApplyChangeSet(t, *ops));
    std::printf("applied %zu basic operation(s) at %s\n", ops->size(),
                t.ToString().c_str());
    return Status::OK();
  }

  Status RunQuery(const std::string& text, chorel::Strategy strategy) {
    DOEM_RETURN_IF_ERROR(RequireDb());
    auto r = chorel::RunChorel(*doem_, text, strategy);
    if (!r.ok()) return r.status();
    std::printf("%s", WriteOemText(r->answer).c_str());
    std::printf("(%zu row(s))\n", r->rows.size());
    return Status::OK();
  }

  std::optional<DoemDatabase> doem_;
  ChangeSet pending_;
  int errors_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::ifstream script;
  bool interactive = argc < 2;
  if (!interactive) {
    script.open(argv[1]);
    if (!script) {
      std::fprintf(stderr, "cannot open script '%s'\n", argv[1]);
      return 2;
    }
  }
  std::istream& in = interactive ? std::cin : script;
  Shell shell;
  std::string line;
  if (interactive) std::printf("doem> ");
  while (std::getline(in, line)) {
    if (!interactive) std::printf("doem> %s\n", line.c_str());
    if (!shell.Handle(line)) break;
    if (interactive) std::printf("doem> ");
  }
  return shell.errors() == 0 ? 0 : 1;
}
