// Durability walkthrough (DESIGN.md §6e): a QSS service that survives a
// process crash. The library circulation scenario runs half its polls,
// the process "dies", and a second service — sharing nothing but the
// store directory — resumes polling from the committed prefix. The
// resumed run's history and notifications match an uninterrupted run
// exactly, and the persisted store answers Chorel queries against past
// intervals (AsOf / Between) without any service at all.
//
// Exits non-zero on any failed step, so the binary doubles as an
// integration test.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "chorel/chorel.h"
#include "oem/history_text.h"
#include "qss/qss.h"
#include "store/store.h"
#include "store/time_travel.h"

using namespace doem;

namespace {

#define CHECK_OK(expr)                                              \
  do {                                                              \
    Status s_ = (expr);                                             \
    if (!s_.ok()) {                                                 \
      std::printf("FAIL %s:%d: %s\n", __FILE__, __LINE__,           \
                  s_.ToString().c_str());                           \
      std::exit(1);                                                 \
    }                                                               \
  } while (0)

#define CHECK(cond)                                                 \
  do {                                                              \
    if (!(cond)) {                                                  \
      std::printf("FAIL %s:%d: %s\n", __FILE__, __LINE__, #cond);   \
      std::exit(1);                                                 \
    }                                                               \
  } while (0)

struct Library {
  OemDatabase db;
  std::vector<NodeId> status;
};

Library BuildLibrary() {
  Library lib;
  NodeId root = lib.db.NewComplex();
  (void)lib.db.SetRoot(root);
  NodeId library = lib.db.NewComplex();
  (void)lib.db.AddArc(root, "library", library);
  const char* titles[] = {"Semistructured Data", "Temporal Databases"};
  for (const char* title : titles) {
    NodeId book = lib.db.NewComplex();
    (void)lib.db.AddArc(library, "book", book);
    (void)lib.db.AddArc(book, "title", lib.db.NewString(title));
    NodeId status = lib.db.NewString("available");
    (void)lib.db.AddArc(book, "status", status);
    lib.status.push_back(status);
  }
  return lib;
}

OemHistory Circulation(const Library& lib) {
  OemHistory script;
  auto set = [&](size_t book, const char* value) {
    return ChangeOp::UpdNode(lib.status[book], Value::String(value));
  };
  (void)script.Append(Timestamp(2), {set(0, "out")});
  (void)script.Append(Timestamp(4), {set(0, "available")});
  (void)script.Append(Timestamp(6), {set(1, "out")});
  (void)script.Append(Timestamp(8), {set(0, "out")});
  (void)script.Append(Timestamp(10), {set(1, "available")});
  return script;
}

// One "process": a service over a fresh ScriptedSource, persisting into
// `store_dir`. Advances day-by-day through [from, to] and returns the
// accumulated history text plus notification count.
struct RunResult {
  std::string history_text;
  int notifications = 0;
};

RunResult RunProcess(const std::string& store_dir, int from, int to) {
  Library lib = BuildLibrary();
  OemHistory script = Circulation(lib);
  qss::ScriptedSource source(lib.db, script);
  store::DirectoryStoreManager stores(store_dir);
  qss::QssOptions options;
  options.durability.store = &stores;
  qss::QuerySubscriptionService service(&source, Timestamp(0), options);

  qss::Subscription sub;
  sub.name = "Circulation";
  auto freq = qss::FrequencySpec::Parse("every day");
  CHECK(freq.ok());
  sub.frequency = *freq;
  sub.polling_query = "select library.book";
  sub.filter_query =
      "select B from Circulation.book B, B.status<upd at T to NV> "
      "where NV = \"available\" and T > t[-1]";

  RunResult result;
  CHECK_OK(service.Subscribe(
      sub, [&](const qss::Notification&) { ++result.notifications; }));
  for (int day = from; day <= to; ++day) {
    CHECK_OK(service.AdvanceTo(Timestamp(day)));
  }
  const DoemDatabase* d = service.History("Circulation");
  CHECK(d != nullptr);
  result.history_text = WriteHistoryText(d->ExtractHistory());
  return result;
}

}  // namespace

int main() {
  std::string dir = "/tmp/doem_durable_qss_example";
  std::string cleanup = "rm -rf " + dir;
  (void)std::system(cleanup.c_str());

  // Reference: one process polls all 11 days.
  RunResult reference = RunProcess(dir + "/reference", 0, 10);
  std::printf("uninterrupted run: %d notification day(s)\n",
              reference.notifications);

  // Crash after day 5, then a brand-new process resumes days 6..10 from
  // the store alone.
  RunResult before = RunProcess(dir + "/crashed", 0, 5);
  std::printf("first process polled days 0..5 (%d notification(s)), "
              "then crashed\n",
              before.notifications);
  RunResult after = RunProcess(dir + "/crashed", 6, 10);
  std::printf("resumed process polled days 6..10 (%d notification(s))\n",
              after.notifications);

  CHECK(after.history_text == reference.history_text);
  CHECK(before.notifications + after.notifications ==
        reference.notifications);
  std::printf("resumed history is byte-identical to the "
              "uninterrupted run\n");

  // Time travel straight off the persisted bytes: no service, no source.
  store::DirectoryStoreManager stores(dir + "/crashed");
  auto st = stores.OpenStore(std::string("select library.book\x1f") + "1");
  CHECK(st.ok());
  CHECK((*st)->has_state());
  std::vector<Timestamp> polls = (*st)->recovered_times();
  DoemDatabase db = (*st)->TakeRecoveredDb();

  // The persisted database is the group's QSS wrapper: the root arc is
  // labeled with the subscription name, below it the polled books.
  auto past = store::AsOf(db, polls.front());
  CHECK(past.ok());
  auto then = chorel::RunChorel(*past, "select Circulation.book",
                                chorel::Strategy::kDirect);
  CHECK(then.ok());
  CHECK(then->rows.size() == 2);
  std::printf("AsOf(first poll): %zu book(s) in the recovered catalog\n",
              then->rows.size());

  auto window = store::Between(db, polls.front(), polls.back());
  CHECK(window.ok());
  auto churn = chorel::RunChorel(
      *window, "select B from Circulation.book B, B.status<upd at T>",
      chorel::Strategy::kDirect);
  CHECK(churn.ok());
  CHECK(!churn->rows.empty());
  std::printf("Between(first, last): %zu status change(s) in the window\n",
              churn->rows.size());

  (void)std::system(cleanup.c_str());
  std::printf("OK\n");
  return 0;
}
