// Observability walkthrough (DESIGN.md §6d): run a scripted QSS workload
// with a flaky source, then inspect everything the obs layer collected —
// the per-subscription health table, the qss.*/chorel.* metric families
// in Prometheus text exposition, and a Chrome trace of the poll pipeline
// (load the written .trace.json in Perfetto or chrome://tracing).
//
// Usage: qss_dashboard [trace-output-path]

#include <cstdio>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "qss/executor.h"
#include "qss/fault.h"
#include "qss/qss.h"
#include "testing/generators.h"

using namespace doem;

namespace {

constexpr int64_t kDays = 14;

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

void PrintHealth(const qss::QuerySubscriptionService& service,
                 const char* name) {
  qss::PollHealth h = service.Health(name);
  std::printf("  %-10s %-8s attempted=%-3zu ok=%-3zu failed=%-3zu "
              "retries=%-2zu missed=%zu(+%zu dropped)\n",
              name, qss::CircuitStateToString(h.state), h.polls_attempted,
              h.polls_succeeded, h.polls_failed, h.retries, h.missed.size(),
              h.missed_dropped);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path =
      argc > 1 ? argv[1] : "qss_dashboard.trace.json";

  // A restaurant guide source that edits itself daily — and goes down for
  // two days mid-run (4 failed attempts = 2 polls x 2 attempts each),
  // tripping the circuit breaker.
  OemDatabase base = testing::SyntheticGuide(40);
  OemHistory script =
      testing::SyntheticGuideHistory(base, static_cast<size_t>(kDays), 4);
  qss::ScriptedSource inner(base, script);
  qss::FaultInjectingSource source(&inner);
  source.FailPolls(/*skip=*/10, /*count=*/4,
                   Status::Unavailable("wrapper down for maintenance"));

  obs::MetricsRegistry metrics;
  obs::TraceRecorder trace;
  qss::ThreadPoolExecutor pool(2);

  qss::QssOptions opts;
  opts.observability.metrics = &metrics;
  opts.observability.trace = &trace;
  opts.executor = &pool;
  opts.fault_tolerance.retry.max_attempts = 2;
  opts.fault_tolerance.quarantine_after = 2;
  opts.fault_tolerance.quarantine_cooldown_ticks = 2;
  opts.fault_tolerance.on_error = [](const qss::PollError& e) {
    std::printf("  [error] %s at %s: %s\n", e.subject.c_str(),
                e.time.ToString().c_str(), e.status.ToString().c_str());
  };

  Timestamp start(Timestamp::FromDate(1997, 1, 1).ticks);
  qss::QuerySubscriptionService service(&source, start, opts);

  size_t notifications = 0;
  auto on_notify = [&](const qss::Notification& n) {
    ++notifications;
    std::printf("  [notify] %s at %s: %zu row(s)\n", n.subscription.c_str(),
                n.poll_time.ToString().c_str(), n.result.rows.size());
  };

  // Two subscriptions sharing one poll group (same polling query and
  // frequency), watching different kinds of change.
  for (const auto& [name, filter] :
       {std::pair<std::string, std::string>{
            "NewPlaces", "select S.restaurant<cre at T> where T > t[-1]"},
        {"PriceMoves",
         "select S.restaurant.price<upd at T> where T > t[-1]"}}) {
    qss::Subscription sub;
    sub.name = name;
    sub.frequency = *qss::FrequencySpec::Parse("every day");
    sub.polling_query = "select guide.restaurant";
    std::string f = filter;
    f.replace(f.find('S'), 1, name);
    sub.filter_query = f;
    Status st = service.Subscribe(sub, on_notify);
    if (!st.ok()) {
      std::printf("subscribe %s failed: %s\n", name.c_str(),
                  st.ToString().c_str());
      return 1;
    }
  }

  std::printf("== workload: %lld daily polls, source down on days 11-12 ==\n",
              static_cast<long long>(kDays));
  qss::PollReport report;
  for (int64_t day = 0; day < kDays; ++day) {
    Status st = service.AdvanceTo(Timestamp(start.ticks + day), &report);
    if (!st.ok()) {
      std::printf("advance failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  std::printf("\n== poll report ==\n");
  std::printf("  attempted=%zu ok=%zu failed=%zu missed=%zu retries=%zu "
              "notifications=%zu\n",
              report.polls_attempted, report.polls_ok, report.polls_failed,
              report.polls_missed, report.retries, report.notifications);
  std::printf("  phase wall time: fetch=%.2fms diff=%.2fms apply=%.2fms "
              "filter=%.2fms (whole calls: %.2fms)\n",
              report.fetch_ns / 1e6, report.diff_ns / 1e6,
              report.apply_ns / 1e6, report.filter_ns / 1e6,
              report.elapsed_ns / 1e6);

  std::printf("\n== health ==\n");
  PrintHealth(service, "NewPlaces");
  PrintHealth(service, "PriceMoves");

  std::printf("\n== metrics (Prometheus exposition) ==\n%s",
              metrics.ExportPrometheus().c_str());

  // The trace: one qss.advance span per day, nesting per-group prepare
  // (fetch, diff) and commit (apply, per-member filter) spans.
  std::string chrome = trace.ExportChromeTrace();
  if (FILE* f = std::fopen(trace_path.c_str(), "w")) {
    std::fwrite(chrome.data(), 1, chrome.size(), f);
    std::fclose(f);
    std::printf("\n== trace ==\n  %zu span(s), %llu dropped -> %s\n",
                trace.Events().size(),
                static_cast<unsigned long long>(trace.dropped()),
                trace_path.c_str());
  } else {
    std::printf("cannot write %s\n", trace_path.c_str());
    return 1;
  }

  // Self-checks so this example doubles as an end-to-end test.
  std::string prom = metrics.ExportPrometheus();
  if (!Contains(prom, "qss_polls_ok") ||
      !Contains(prom, "qss_quarantine_trips 1") ||
      !Contains(prom, "chorel_cache_patches") ||
      !Contains(prom, "qss_fetch_ns_bucket")) {
    std::printf("FAIL: expected metric families missing from exposition\n");
    return 1;
  }
  if (metrics.CounterValue("qss.polls_ok") != report.polls_ok ||
      metrics.CounterValue("qss.notifications") != notifications) {
    std::printf("FAIL: metrics disagree with the poll report\n");
    return 1;
  }
#ifndef DOEM_TRACING_DISABLED
  if (trace.Events().empty() || !Contains(chrome, "\"qss.advance\"") ||
      !Contains(chrome, "\"qss.filter\"")) {
    std::printf("FAIL: trace missing expected spans\n");
    return 1;
  }
#endif
  std::printf("dashboard checks passed\n");
  return 0;
}
