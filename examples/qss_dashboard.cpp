// Live introspection walkthrough (DESIGN.md §6d, §6h): run a scripted
// QSS workload with a flaky source behind the multiplexing wire server,
// then inspect it the way an operator would — over the wire. The client
// subscribes, receives notification frames as polls commit, and issues
// the admin requests: kStatsRequest (Prometheus exposition + interval
// rates), kHealthRequest (per-poll-group circuit state and last-poll
// phase timings), kTraceDumpRequest (drains the Chrome-trace buffer;
// load the written .trace.json in Perfetto or chrome://tracing). The
// structured event log is printed as JSON lines at the end.
//
// Usage: qss_dashboard [trace-output-path]

#include <cstdio>
#include <string>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qss/executor.h"
#include "qss/fault.h"
#include "qss/qss.h"
#include "qss/server/server.h"
#include "qss/server/transport.h"
#include "testing/generators.h"

using namespace doem;
using qss::server::MsgType;

namespace {

constexpr int64_t kDays = 14;

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

void PrintGroupHealth(const qss::server::GroupHealthMsg& g) {
  std::printf("  %-28s %-8s subs=%zu polls=%zu attempted=%zu ok=%zu "
              "failed=%zu retries=%zu missed=%zu(+%zu dropped)\n",
              g.entries.c_str(), qss::CircuitStateToString(g.circuit),
              static_cast<size_t>(g.subscribers),
              static_cast<size_t>(g.polls_committed),
              static_cast<size_t>(g.polls_attempted),
              static_cast<size_t>(g.polls_succeeded),
              static_cast<size_t>(g.polls_failed),
              static_cast<size_t>(g.retries), g.missed.size(),
              static_cast<size_t>(g.missed_dropped));
  const qss::PollPhaseLatency& lp = g.last_poll;
  std::printf("  %-28s last poll: fetch=%.3fms diff=%.3fms apply=%.3fms "
              "filter=%.3fms fanout=%.3fms wire=%.3fms e2e=%.3fms\n", "",
              lp.fetch_ns / 1e6, lp.diff_ns / 1e6, lp.apply_ns / 1e6,
              lp.filter_ns / 1e6, lp.fanout_ns / 1e6, lp.wire_ns / 1e6,
              lp.e2e_ns / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path =
      argc > 1 ? argv[1] : "qss_dashboard.trace.json";

  // A restaurant guide source that edits itself daily — and goes down for
  // two days mid-run (4 failed attempts = 2 polls x 2 attempts each),
  // tripping the circuit breaker.
  OemDatabase base = testing::SyntheticGuide(40);
  OemHistory script =
      testing::SyntheticGuideHistory(base, static_cast<size_t>(kDays), 4);
  qss::ScriptedSource inner(base, script);
  qss::FaultInjectingSource source(&inner);
  source.FailPolls(/*skip=*/10, /*count=*/4,
                   Status::Unavailable("wrapper down for maintenance"));

  obs::MetricsRegistry metrics;
  obs::TraceRecorder trace;
  obs::EventLog events(256);
  qss::ThreadPoolExecutor pool(2);

  qss::QssOptions opts;
  opts.observability.metrics = &metrics;
  opts.observability.trace = &trace;
  opts.observability.events = &events;
  opts.executor = &pool;
  opts.fault_tolerance.retry.max_attempts = 2;
  opts.fault_tolerance.quarantine_after = 2;
  opts.fault_tolerance.quarantine_cooldown_ticks = 2;
  opts.fault_tolerance.on_error = [](const qss::PollError& e) {
    std::printf("  [error] %s at %s: %s\n", e.subject.c_str(),
                e.time.ToString().c_str(), e.status.ToString().c_str());
  };

  Timestamp start(Timestamp::FromDate(1997, 1, 1).ticks);
  qss::QuerySubscriptionService service(&source, start, opts);

  // The wire plumbing: the server multiplexes the service's registry,
  // the client talks to it through a deterministic in-process pipe.
  qss::server::QssServer server(&service.registry());
  qss::server::LoopbackPipe pipe;
  qss::server::QssClient client(
      [&pipe](std::string_view bytes) { pipe.ClientSend(bytes); });
  qss::server::QssServer::ConnectionId conn = server.Attach(
      [&pipe](std::string_view bytes) { pipe.ServerSend(bytes); });
  pipe.set_server_sink([&server, conn](std::string_view bytes) {
    server.OnBytes(conn, bytes);
  });
  pipe.set_client_sink(
      [&client](std::string_view bytes) { client.OnBytes(bytes); });

  // Two subscriptions sharing one poll group (same polling query and
  // frequency), watching different kinds of change — registered over
  // the wire this time.
  for (const std::string name : {"NewPlaces", "PriceMoves"}) {
    qss::server::SubscribeMsg sub;
    sub.name = name;
    sub.interval_ticks = 1;
    sub.polling_query = "select guide.restaurant";
    sub.filter_query =
        name == "NewPlaces"
            ? "select NewPlaces.restaurant<cre at T> where T > t[-1]"
            : "select PriceMoves.restaurant.price<upd at T> where T > t[-1]";
    client.Subscribe(sub);
  }
  pipe.PumpAll();
  size_t subscribed = 0;
  for (const auto& e : client.TakeEvents()) {
    if (e.type == MsgType::kSubscribed) {
      ++subscribed;
    } else if (e.type == MsgType::kError) {
      std::printf("subscribe failed: %s\n", e.error.message.c_str());
      return 1;
    }
  }
  if (subscribed != 2) {
    std::printf("FAIL: expected 2 subscriptions, got %zu\n", subscribed);
    return 1;
  }

  std::printf("== workload: %lld daily polls, source down on days 11-12 ==\n",
              static_cast<long long>(kDays));
  qss::PollReport report;
  size_t notifications = 0;
  for (int64_t day = 0; day < kDays; ++day) {
    Status st = service.AdvanceTo(Timestamp(start.ticks + day), &report);
    if (!st.ok()) {
      std::printf("advance failed: %s\n", st.ToString().c_str());
      return 1;
    }
    // Notification frames queued during the tick sit in the pipe like a
    // socket buffer until pumped.
    pipe.PumpAll();
    for (const auto& e : client.TakeEvents()) {
      if (e.type != MsgType::kNotification) continue;
      ++notifications;
      std::printf("  [notify] %s at %s: %zu byte(s) of rows\n",
                  e.notification.name.c_str(),
                  e.notification.poll_time.ToString().c_str(),
                  e.notification.rows.size());
    }
  }

  std::printf("\n== poll report ==\n");
  std::printf("  attempted=%zu ok=%zu failed=%zu missed=%zu retries=%zu "
              "notifications=%zu\n",
              report.polls_attempted, report.polls_ok, report.polls_failed,
              report.polls_missed, report.retries, report.notifications);

  // ---- Admin round 1: health over the wire ----------------------------
  client.RequestHealth();
  pipe.PumpAll();
  auto replies = client.TakeEvents();
  if (replies.size() != 1 || replies[0].type != MsgType::kHealthReply) {
    std::printf("FAIL: expected one health reply\n");
    return 1;
  }
  qss::server::HealthReplyMsg health = std::move(replies[0].health);
  std::printf("\n== health (over the wire, at %s) ==\n",
              health.now.ToString().c_str());
  for (const auto& g : health.groups) PrintGroupHealth(g);

  // ---- Admin round 2: stats over the wire -----------------------------
  client.RequestStats(qss::server::StatsFormat::kPrometheus);
  pipe.PumpAll();
  replies = client.TakeEvents();
  if (replies.size() != 1 || replies[0].type != MsgType::kStatsReply) {
    std::printf("FAIL: expected one stats reply\n");
    return 1;
  }
  qss::server::StatsReplyMsg stats = std::move(replies[0].stats);
  std::printf("\n== metrics (Prometheus exposition, over the wire) ==\n%s",
              stats.body.c_str());
  std::printf("\n== interval rates (%.2fms window) ==\n  %s\n",
              stats.interval_ns / 1e6, stats.rates_json.c_str());

  // ---- Admin round 3: drain the trace ---------------------------------
  client.RequestTraceDump();
  pipe.PumpAll();
  replies = client.TakeEvents();
  if (replies.size() != 1 || replies[0].type != MsgType::kTraceDumpReply) {
    std::printf("FAIL: expected one trace-dump reply\n");
    return 1;
  }
  qss::server::TraceDumpReplyMsg dump = std::move(replies[0].trace_dump);
  if (FILE* f = std::fopen(trace_path.c_str(), "w")) {
    std::fwrite(dump.chrome_json.data(), 1, dump.chrome_json.size(), f);
    std::fclose(f);
    std::printf("\n== trace (drained over the wire) ==\n"
                "  %llu span(s), %llu dropped -> %s\n",
                static_cast<unsigned long long>(dump.events),
                static_cast<unsigned long long>(dump.dropped),
                trace_path.c_str());
  } else {
    std::printf("cannot write %s\n", trace_path.c_str());
    return 1;
  }

  // ---- The structured event log ---------------------------------------
  std::printf("\n== event log (JSON lines, warnings and errors) ==\n%s",
              events.ExportJsonLines(obs::EventSeverity::kWarning).c_str());

  // Self-checks so this example doubles as an end-to-end test.
  if (notifications == 0 ||
      metrics.CounterValue("qss.notifications") != notifications ||
      metrics.CounterValue("qss.server.notifications") != notifications) {
    std::printf("FAIL: wire notifications disagree with the metrics\n");
    return 1;
  }
  if (!Contains(stats.body, "qss_polls_ok") ||
      !Contains(stats.body, "qss_quarantine_trips 1") ||
      !Contains(stats.body, "# HELP qss_server_notifications") ||
      !Contains(stats.body, "qss_notify_e2e_ns_bucket")) {
    std::printf("FAIL: expected metric families missing from exposition\n");
    return 1;
  }
  if (!Contains(stats.rates_json, "\"counter_deltas\"")) {
    std::printf("FAIL: stats reply carries no interval rates\n");
    return 1;
  }
  if (health.groups.size() != 1 || health.groups[0].subscribers != 2 ||
      health.groups[0].circuit != qss::CircuitState::kClosed) {
    std::printf("FAIL: health reply shape unexpected\n");
    return 1;
  }
#ifndef DOEM_TRACING_DISABLED
  if (dump.events == 0 || !Contains(dump.chrome_json, "\"qss.advance\"") ||
      !Contains(dump.chrome_json, "\"qss.filter\"")) {
    std::printf("FAIL: trace dump missing expected spans\n");
    return 1;
  }
  // The dump drained the recorder: a second dump is empty.
  client.RequestTraceDump();
  pipe.PumpAll();
  replies = client.TakeEvents();
  if (replies.size() != 1 || replies[0].trace_dump.events != 0) {
    std::printf("FAIL: trace dump did not drain the recorder\n");
    return 1;
  }
#endif
#ifndef DOEM_EVENTLOG_DISABLED
  std::string log = events.ExportJsonLines();
  if (!Contains(log, "\"quarantine-opened\"") ||
      !Contains(log, "\"poll-failed\"") ||
      !Contains(log, "\"connection-opened\"") ||
      !Contains(log, "\"subscribed\"")) {
    std::printf("FAIL: event log missing expected events\n");
    return 1;
  }
#endif
  std::printf("dashboard checks passed\n");
  return 0;
}
