// The library scenario from the paper's introduction: "notify me whenever
// any popular book becomes available", where a book is popular if it was
// checked out two or more times in the past month — against a legacy
// system with no triggers and no accessible history (Section 1.1).
//
// QSS solves it by polling the catalog, inferring changes with OEMdiff,
// keeping them in a DOEM database, and running a Chorel filter. The
// popularity condition becomes a self-join on upd annotations: two
// distinct updates to "out" within the window, plus an update to
// "available" since the last poll.

#include <cstdio>

#include "qss/qss.h"

using namespace doem;

namespace {

// Builds a small circulation database: library.book with title and
// status ("available" / "out").
struct Library {
  OemDatabase db;
  std::vector<NodeId> status;  // status node per book
};

Library BuildLibrary() {
  Library lib;
  NodeId root = lib.db.NewComplex();
  (void)lib.db.SetRoot(root);
  NodeId library = lib.db.NewComplex();
  (void)lib.db.AddArc(root, "library", library);
  const char* titles[] = {"A Relational Model of Data", "The Art of SQL",
                          "Semistructured Data", "Temporal Databases"};
  for (const char* title : titles) {
    NodeId book = lib.db.NewComplex();
    (void)lib.db.AddArc(library, "book", book);
    (void)lib.db.AddArc(book, "title", lib.db.NewString(title));
    NodeId status = lib.db.NewString("available");
    (void)lib.db.AddArc(book, "status", status);
    lib.status.push_back(status);
  }
  return lib;
}

}  // namespace

int main() {
  Library lib = BuildLibrary();

  // The circulation script, in day ticks: book 2 ("Semistructured Data")
  // is checked out and returned twice, then returned once more; book 0
  // goes out once and comes back (not popular).
  OemHistory script;
  auto set_status = [&](NodeId node, const char* value) {
    return ChangeOp::UpdNode(node, Value::String(value));
  };
  (void)script.Append(Timestamp(2), {set_status(lib.status[2], "out")});
  (void)script.Append(Timestamp(5),
                      {set_status(lib.status[2], "available")});
  (void)script.Append(Timestamp(7), {set_status(lib.status[0], "out")});
  (void)script.Append(Timestamp(9), {set_status(lib.status[2], "out")});
  (void)script.Append(Timestamp(12),
                      {set_status(lib.status[0], "available")});
  (void)script.Append(Timestamp(14),
                      {set_status(lib.status[2], "available")});

  qss::ScriptedSource source(lib.db, script);
  qss::QuerySubscriptionService service(&source, Timestamp(0));

  qss::Subscription sub;
  sub.name = "Circulation";
  auto freq = qss::FrequencySpec::Parse("every day");
  if (!freq.ok()) return 1;
  sub.frequency = *freq;
  sub.polling_query = "select library.book";
  // Popular book became available: an update to "available" since the
  // last poll, and two earlier distinct checkouts (the popularity window
  // equals the retained history here; a bounded window would add
  // "and T1 > <cutoff>").
  sub.filter_query =
      "select TITLE from Circulation.book B, B.title TITLE, "
      "B.status<upd at T to NV>, "
      "B.status<upd at T1 to V1>, B.status<upd at T2 to V2> "
      "where NV = \"available\" and T > t[-1] and "
      "V1 = \"out\" and V2 = \"out\" and T1 < T2";

  int notifications = 0;
  Status s = service.Subscribe(sub, [&](const qss::Notification& n) {
    ++notifications;
    std::printf("day %-3s: popular book(s) back on the shelf:\n",
                n.poll_time.ToString().c_str());
    for (const auto& row : n.result.rows) {
      // The title is a node of the DOEM database; print its value.
      const DoemDatabase* d = service.History("Circulation");
      if (row[0].kind == lorel::RtVal::Kind::kNode && d != nullptr) {
        std::printf("   %s\n",
                    d->CurrentValue(row[0].node).ToString().c_str());
      }
    }
  });
  if (!s.ok()) {
    std::printf("subscribe failed: %s\n", s.ToString().c_str());
    return 1;
  }

  for (int day = 0; day <= 16; ++day) {
    Status st = service.AdvanceTo(Timestamp(day));
    if (!st.ok()) {
      std::printf("poll failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("%d notification day(s); polls: %zu\n", notifications,
              service.PollingTimes("Circulation").size());

  // The DOEM database accumulated the full circulation history even
  // though the source exposes none — the paper's second motivation.
  const DoemDatabase* d = service.History("Circulation");
  if (d != nullptr) {
    std::printf("reconstructed circulation history: %zu change days\n",
                d->AllTimestamps().size());
  }
  return notifications > 0 ? 0 : 1;
}
