# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/oem_test[1]_include.cmake")
include("/root/repo/build/tests/oem_text_test[1]_include.cmake")
include("/root/repo/build/tests/doem_test[1]_include.cmake")
include("/root/repo/build/tests/encoding_test[1]_include.cmake")
include("/root/repo/build/tests/lorel_test[1]_include.cmake")
include("/root/repo/build/tests/chorel_test[1]_include.cmake")
include("/root/repo/build/tests/diff_test[1]_include.cmake")
include("/root/repo/build/tests/qss_test[1]_include.cmake")
include("/root/repo/build/tests/htmldiff_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/annotation_index_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/triggers_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/update_test[1]_include.cmake")
include("/root/repo/build/tests/graph_compare_test[1]_include.cmake")
include("/root/repo/build/tests/timestamp_edge_test[1]_include.cmake")
include("/root/repo/build/tests/history_text_test[1]_include.cmake")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_restaurant_guide "/root/repo/build/examples/restaurant_guide")
set_tests_properties(example_restaurant_guide PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;25;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_library_qss "/root/repo/build/examples/library_qss")
set_tests_properties(example_library_qss PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_htmldiff_demo "/root/repo/build/examples/htmldiff_demo")
set_tests_properties(example_htmldiff_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;27;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_doem_shell "/root/repo/build/examples/doem_shell" "/root/repo/examples/data/shell_demo.txt")
set_tests_properties(example_doem_shell PROPERTIES  WORKING_DIRECTORY "/root/repo" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;29;add_test;/root/repo/tests/CMakeLists.txt;0;")
